// Serving-layer benchmark: throughput and latency of DfeServer versus
// replica count and micro-batching, plus behavior at the overload cliff.
//
// The paper's pipeline only delivers its throughput while it is kept full
// (§III-B); this bench quantifies how much the serving layer contributes:
// the same closed-loop load is driven at a single unbatched replica (the
// naive DfeSession::infer() deployment) and at replica farms with dynamic
// micro-batching. Replicas are pinned to the thread-per-kernel executor —
// the hardware-faithful board model, where every kernel is concurrently
// live and each run() pays the full pipeline spin-up that micro-batching
// exists to amortize. The acceptance bar for the serving subsystem is the
// "4 replicas + batching" row reaching >= 2x the single-replica-unbatched
// throughput under that engine. A final row runs the farm on the default
// pooled engine, whose per-run cost is one worker spawn instead of one
// per kernel: the engine now does most of the amortizing itself, which is
// why its unbatched baseline sits far above the board model's. A final
// open-loop Poisson run pushes a small server past saturation to show
// admission control rejecting instead of queuing without bound.
//
// Output: the usual table (CSV via QNN_CSV_DIR) plus a JSON block on
// stdout for scripted consumption.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "backend/builtin.h"
#include "bench_util.h"
#include "fault/fault.h"
#include "io/synthetic.h"
#include "models/zoo.h"
#include "plan/autotune.h"
#include "serve/load_generator.h"
#include "serve/server.h"

namespace qnn {
namespace {

struct Scenario {
  std::string label;
  int replicas;
  int max_batch;
  ExecutorKind engine = ExecutorKind::kThreadPerKernel;
};

// ---- mixed-pool ablation ------------------------------------------------
//
// The backend-registry payoff in one table: the same mixed tight +
// best-effort load is driven at (a) a fast-only pool, (b) a fast+slow pool
// with deadline-class routing, and (c) the same mixed pool with routing
// off (naive: any non-shadow replica takes anything). Tight-deadline
// goodput — requests that complete *within* their deadline per second —
// is the score. Naive routing lets the idle slow replicas pull tight work
// they cannot finish in time, so (b) must beat (c) by >= 1.3x; that bar
// is this bench's exit code and the PERF=1 gate in tools/check.sh.

struct PoolScore {
  std::uint64_t tight_ok = 0;      // completed within the tight deadline
  std::uint64_t tight_missed = 0;  // expired, errored, or finished late
  std::uint64_t be_ok = 0;
  double window_s = 0.0;

  [[nodiscard]] double tight_goodput_qps() const {
    return window_s > 0.0 ? static_cast<double>(tight_ok) / window_s : 0.0;
  }
  [[nodiscard]] double be_qps() const {
    return window_s > 0.0 ? static_cast<double>(be_ok) / window_s : 0.0;
  }
};

constexpr std::int64_t kTightUs = 4000;
constexpr const char* kSlowBackend = "reference-5ms";

PoolScore drive_mixed_load(DfeServer& server,
                           const std::vector<IntTensor>& images) {
  // Fixed-wall-clock closed loop: 4 clients hammer tight requests, 4 push
  // best-effort work, for the same window in every scenario — so the
  // goodput denominators are comparable across pools.
  constexpr int kTightClients = 4;
  constexpr int kBeClients = 4;
  constexpr auto kWindow = std::chrono::milliseconds(400);
  std::atomic<std::uint64_t> tight_ok{0};
  std::atomic<std::uint64_t> tight_missed{0};
  std::atomic<std::uint64_t> be_ok{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kTightClients + kBeClients);
  for (int c = 0; c < kTightClients + kBeClients; ++c) {
    const bool tight = c < kTightClients;
    clients.emplace_back([&, c, tight] {
      std::size_t i = static_cast<std::size_t>(c);
      while (std::chrono::steady_clock::now() - t0 < kWindow) {
        const IntTensor& img = images[i++ % images.size()];
        const InferenceResult r =
            server.submit(img, tight ? kTightUs : 0);
        if (tight) {
          const bool in_time = r.ok() && r.total_us <= kTightUs;
          (in_time ? tight_ok : tight_missed).fetch_add(1);
        } else if (r.ok()) {
          be_ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  PoolScore score;
  score.window_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  score.tight_ok = tight_ok.load();
  score.tight_missed = tight_missed.load();
  score.be_ok = be_ok.load();
  return score;
}

int run_backends() {
  bench::heading("Mixed-pool backend ablation",
                 "tight-deadline goodput: fast-only vs fast+slow with "
                 "deadline-class routing vs the same pool routed naively");

  // A deliberately slow tier with a 5 ms/image floor: anything tight
  // (<= 4 ms) that lands on it is lost by construction.
  if (backend_registry().find(kSlowBackend) == nullptr) {
    (void)backend_registry().register_backend(
        make_reference_backend(5000, kSlowBackend));
  }

  const NetworkSpec spec = models::tiny(8, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 83);
  SessionConfig session_config;
  session_config.fast_estimate = true;
  const std::vector<IntTensor> images = synthetic_batch(8, 8, 8, 3, 84);

  struct PoolScenario {
    std::string label;
    std::vector<ServerConfig::PoolEntry> pool;
    bool route_by_deadline;
  };
  const std::vector<PoolScenario> scenarios = {
      {"fast-only (1x engine)", {{"engine", 1}}, true},
      {"mixed, deadline routing", {{"engine", 1}, {kSlowBackend, 2}}, true},
      {"mixed, naive routing", {{"engine", 1}, {kSlowBackend, 2}}, false},
  };

  Table t({"configuration", "tight ok", "tight missed", "tight goodput qps",
           "best-effort qps"});
  std::ostringstream json;
  json << "{\n  \"scenarios\": [\n";
  double routed_goodput = 0.0;
  double naive_goodput = 0.0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const PoolScenario& sc = scenarios[i];
    ServerConfig cfg;
    cfg.pool = sc.pool;
    cfg.route_by_deadline = sc.route_by_deadline;
    cfg.tight_deadline_us = kTightUs;
    cfg.max_batch = 8;
    cfg.batch_timeout_us = 200;
    cfg.queue_capacity = 2048;
    cfg.quarantine_after = 1000;  // keep healing out of the comparison
    DfeServer server(spec, params, cfg, session_config);
    const PoolScore score = drive_mixed_load(server, images);
    server.stop();
    if (sc.pool.size() > 1) {
      (sc.route_by_deadline ? routed_goodput : naive_goodput) =
          score.tight_goodput_qps();
    }
    t.add_row({sc.label, Table::integer(score.tight_ok),
               Table::integer(score.tight_missed),
               Table::num(score.tight_goodput_qps(), 1),
               Table::num(score.be_qps(), 1)});
    json << "    {\"label\": \"" << sc.label
         << "\", \"route_by_deadline\": "
         << (sc.route_by_deadline ? "true" : "false")
         << ", \"tight_ok\": " << score.tight_ok
         << ", \"tight_missed\": " << score.tight_missed
         << ", \"tight_goodput_qps\": " << score.tight_goodput_qps()
         << ", \"best_effort_qps\": " << score.be_qps()
         << ", \"window_s\": " << score.window_s << "}"
         << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  bench::emit(t, "bench_backends");
  // Guard the degenerate naive-goodput-of-zero case (total collapse): the
  // routed pool then wins by any margin.
  const double ratio = naive_goodput > 0.0
                           ? routed_goodput / naive_goodput
                           : (routed_goodput > 0.0 ? 1e9 : 0.0);
  json << "  ],\n  \"routed_over_naive_tight_goodput\": " << ratio
       << "\n}\n";
  std::cout << "\nrouted/naive tight-deadline goodput: "
            << Table::num(ratio, 2) << "x (acceptance bar: >= 1.3x)\n\n"
            << json.str();
  const char* csv_dir = std::getenv("QNN_CSV_DIR");
  const std::string json_path =
      (csv_dir != nullptr ? std::string(csv_dir) + "/" : std::string()) +
      "BENCH_backends.json";
  std::ofstream jf(json_path);
  if (jf && (jf << json.str())) {
    std::cout << "(json written to " << json_path << ")\n";
  }
  return ratio >= 1.3 ? 0 : 1;
}

// ---- autotuned-plan ablation --------------------------------------------
//
// The plan/ autotuner's payoff measured where it matters: the same
// single-replica server is compiled twice — once against the default
// CompiledPlan (exactly what the engine would decide on its own) and once
// against the SLO-tuned winner — and scored three ways, every repeat
// alternating between the two live arms so machine drift hits both:
//
//   * raw        -> the tuning metric itself: micro-batched infer
//                   throughput on a bare session, repeats paired;
//   * closed loop -> serving capacity (achieved qps at saturation);
//   * open loop   -> p99 at a FIXED offered rate just under the default
//                    plan's capacity, where a capacity edge amplifies
//                    into a queueing-delay gap (wait ~ rho/(1-rho)).
//
// The recorded BENCH_autotune.json must show the tuned plan >= 1.15x the
// default on a throughput metric OR <= 0.87x its p99 ("pass": true); the
// exit code enforces the structural invariant that survives this 1-core
// box's run-to-run mood swings — the tuned plan LOSES on no throughput
// metric beyond the noise floor. PERF=1 tools/check.sh replays the
// ablation and additionally pins the tuned arm's capacity to the
// committed baseline, mirroring the executor-ablation gate.

struct PlanArmResult {
  double raw_ips = 0.0;
  double capacity_qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t open_ok = 0;
  std::uint64_t open_rejected = 0;
};

/// One timed pass of `chunks` through a bare session (no server in
/// front); the best of the interleaved repeats lands in `arm.raw_ips`.
void measure_raw(BackendSession& session,
                 const std::vector<std::vector<IntTensor>>& chunks,
                 std::size_t total_images, PlanArmResult& arm) {
  const auto start = std::chrono::steady_clock::now();
  for (const std::vector<IntTensor>& chunk : chunks) {
    (void)session.infer_batch(chunk);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (elapsed > 0.0) {
    arm.raw_ips =
        std::max(arm.raw_ips, static_cast<double>(total_images) / elapsed);
  }
}

/// Latency-oriented micro-batching: with small batches every run() pays
/// the engine spin-up, which is exactly the cost the plan's executor
/// choice moves — the regime where a tuned plan earns its keep.
ServerConfig ablation_server_config() {
  ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 4;
  cfg.batch_timeout_us = 200;
  cfg.queue_capacity = 4096;    // queueing shows as latency, not rejects
  cfg.quarantine_after = 1000;  // keep healing out of the comparison
  return cfg;
}

/// Closed-loop capacity, best of `repeats` (interference only ever slows
/// a run down, so the max is the cleanest estimate on a shared box).
void measure_capacity(LoadGenerator& gen, int repeats, PlanArmResult& arm) {
  for (int r = 0; r < repeats; ++r) {
    const LoadResult res = gen.closed_loop(/*clients=*/16,
                                           /*requests_per_client=*/32);
    arm.capacity_qps = std::max(arm.capacity_qps, res.achieved_qps);
  }
}

/// Open-loop tail latency at `offered_qps`; keeps the lowest-p99 repeat
/// (same best-of-repeats argument). The Poisson schedule is seeded, so
/// both arms see the identical arrival process on each repeat.
void measure_tail(LoadGenerator& gen, double offered_qps, int repeat,
                  PlanArmResult& arm) {
  const int n = std::max(256, static_cast<int>(offered_qps * 0.75));
  const LoadResult res =
      gen.open_loop(offered_qps, n, /*seed=*/static_cast<std::uint64_t>(
                                        17 + repeat));
  if (arm.p99_us == 0.0 || res.p99_us < arm.p99_us) {
    arm.p50_us = res.p50_us;
    arm.p99_us = res.p99_us;
    arm.open_ok = res.ok;
    arm.open_rejected = res.rejected_overload + res.rejected_deadline;
  }
}

int run_autotune() {
  bench::heading("Autotuned-plan ablation",
                 "default CompiledPlan vs the SLO-tuned winner: paired raw "
                 "micro-batch throughput, closed-loop capacity, and p99 at "
                 "a fixed offered rate near the default plan's capacity");

  const NetworkSpec spec = models::tiny(8, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 80);
  SessionConfig base;
  base.fast_estimate = true;
  const std::vector<IntTensor> images = synthetic_batch(8, 8, 8, 3, 81);

  // Tune FOR the serving regime below: a latency SLO, so calibration runs
  // micro-batches (spin-up paid per run) instead of one big batch.
  AutotuneConfig tune;
  tune.slo_us = 2000;
  tune.calibration_micro_batch = 4;  // matches the server's max_batch
  tune.time_budget_s = 20.0;
  const AutotuneResult tuned = autotune(pipeline, params, tune);
  std::cout << "autotune: " << tuned.evaluated << " candidates verified, "
            << tuned.pruned << " pruned; winner "
            << tuned.best.fingerprint() << " ("
            << to_string(tuned.best.executor) << ", burst "
            << tuned.best.burst
            << (tuned.best.adaptive_burst ? ", adaptive" : ", flat")
            << ", fifo " << tuned.best.fifo_capacity << ", pool "
            << tuned.best.pool_threads << ") — "
            << Table::num(tuned.best_ips, 1) << " vs "
            << Table::num(tuned.default_ips, 1) << " fps raw\n\n";

  // The default arm gets an EXPLICIT default plan (autotune candidate 0)
  // so a warm QNN_PLAN_CACHE in the environment cannot silently replace it.
  const auto default_plan =
      std::make_shared<const CompiledPlan>(tuned.candidates.front().plan);
  const auto tuned_plan = std::make_shared<const CompiledPlan>(tuned.best);

  PlanArmResult def;
  PlanArmResult tun;

  // Raw paired probe: bare sessions, the tuning metric re-measured with
  // repeats interleaved across the two arms.
  {
    const Backend& engine = backend_registry().at(tuned.best.backend);
    EngineOptions def_opts;
    default_plan->apply_engine(def_opts);
    def_opts.plan = default_plan.get();
    EngineOptions tun_opts;
    tuned_plan->apply_engine(tun_opts);
    tun_opts.plan = tuned_plan.get();
    const auto def_session = engine.compile(pipeline, params, def_opts);
    const auto tun_session = engine.compile(pipeline, params, tun_opts);
    const std::vector<IntTensor> raw_images =
        synthetic_batch(64, 8, 8, 3, 82);
    std::vector<std::vector<IntTensor>> chunks;
    for (std::size_t i = 0; i < raw_images.size(); i += 4) {
      chunks.emplace_back(raw_images.begin() + static_cast<std::ptrdiff_t>(i),
                          raw_images.begin() +
                              static_cast<std::ptrdiff_t>(
                                  std::min(raw_images.size(), i + 4)));
    }
    (void)def_session->infer(raw_images.front());  // warm-up
    (void)tun_session->infer(raw_images.front());
    for (int r = 0; r < 4; ++r) {
      measure_raw(*def_session, chunks, raw_images.size(), def);
      measure_raw(*tun_session, chunks, raw_images.size(), tun);
    }
  }

  // Both servers live for the whole measurement and every repeat
  // alternates between them, so drift on a shared box hits both equally.
  SessionConfig def_sc = base;
  def_sc.plan = default_plan;
  SessionConfig tun_sc = base;
  tun_sc.plan = tuned_plan;
  const ServerConfig cfg = ablation_server_config();
  DfeServer def_server(spec, params, cfg, def_sc);
  DfeServer tun_server(spec, params, cfg, tun_sc);
  LoadGenerator def_gen(def_server, images);
  LoadGenerator tun_gen(tun_server, images);
  (void)def_gen.closed_loop(/*clients=*/8, /*requests_per_client=*/8);
  (void)tun_gen.closed_loop(/*clients=*/8, /*requests_per_client=*/8);

  for (int r = 0; r < 3; ++r) {
    measure_capacity(def_gen, /*repeats=*/1, def);
    measure_capacity(tun_gen, /*repeats=*/1, tun);
  }
  // Shared offered rate for the tail comparison: just under the DEFAULT
  // plan's capacity, the regime where the tuned plan's capacity edge
  // compounds into queueing headroom.
  const double offered = 0.92 * def.capacity_qps;
  for (int r = 0; r < 3; ++r) {
    measure_tail(def_gen, offered, r, def);
    measure_tail(tun_gen, offered, r, tun);
  }
  def_server.stop();
  tun_server.stop();

  Table t({"plan", "raw fps", "capacity qps", "p50 us @ offered",
           "p99 us @ offered", "open ok", "rejected"});
  const auto row = [&](const char* label, const PlanArmResult& a) {
    t.add_row({label, Table::num(a.raw_ips, 1), Table::num(a.capacity_qps, 1),
               Table::num(a.p50_us, 0), Table::num(a.p99_us, 0),
               Table::integer(a.open_ok), Table::integer(a.open_rejected)});
  };
  row("default", def);
  row("autotuned", tun);
  bench::emit(t, "bench_autotune");

  const double raw_ratio = def.raw_ips > 0.0 ? tun.raw_ips / def.raw_ips : 0.0;
  const double cap_ratio =
      def.capacity_qps > 0.0 ? tun.capacity_qps / def.capacity_qps : 0.0;
  const double p99_ratio = def.p99_us > 0.0 ? tun.p99_us / def.p99_us : 1.0;
  // The recorded artifact's bar: a >= 1.15x throughput win on either
  // throughput metric, or a <= 0.87x p99 win.
  const bool pass =
      raw_ratio >= 1.15 || cap_ratio >= 1.15 || p99_ratio <= 0.87;
  // The exit-code bar: the tuned plan did not LOSE on a throughput metric
  // (beyond the noise floor of this box). The p99 near saturation is
  // reported but not gated — queueing amplifies noise as much as signal.
  const bool no_loss = raw_ratio >= 0.90 && cap_ratio >= 0.90;
  std::cout << "\ntuned/default: raw " << Table::num(raw_ratio, 3)
            << "x, capacity " << Table::num(cap_ratio, 3) << "x, p99 @ "
            << Table::num(offered, 0) << " qps offered "
            << Table::num(p99_ratio, 3)
            << "x (recorded bar: >= 1.15x throughput OR <= 0.87x p99; "
               "exit bar: tuned loses on no throughput metric)\n";

  std::ostringstream json;
  json << "{\n  \"model\": \"" << spec.name << "\",\n"
       << "  \"tuned_fingerprint\": \"" << tuned.best.fingerprint()
       << "\",\n  \"autotune\": {\"evaluated\": " << tuned.evaluated
       << ", \"pruned\": " << tuned.pruned
       << ", \"default_ips\": " << tuned.default_ips
       << ", \"best_ips\": " << tuned.best_ips << "},\n"
       << "  \"offered_qps\": " << offered << ",\n";
  const auto arm_json = [&](const char* label, const PlanArmResult& a) {
    json << "  \"" << label << "\": {\"raw_ips\": " << a.raw_ips
         << ", \"capacity_qps\": " << a.capacity_qps
         << ", \"p50_us\": " << a.p50_us << ", \"p99_us\": " << a.p99_us
         << ", \"open_ok\": " << a.open_ok
         << ", \"open_rejected\": " << a.open_rejected << "}";
  };
  arm_json("default", def);
  json << ",\n";
  arm_json("tuned", tun);
  json << ",\n  \"raw_ratio\": " << raw_ratio
       << ",\n  \"throughput_ratio\": " << cap_ratio
       << ",\n  \"p99_ratio\": " << p99_ratio
       << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "\n" << json.str();
  const char* csv_dir = std::getenv("QNN_CSV_DIR");
  const std::string json_path =
      (csv_dir != nullptr ? std::string(csv_dir) + "/" : std::string()) +
      "BENCH_autotune.json";
  std::ofstream jf(json_path);
  if (jf && (jf << json.str())) {
    std::cout << "(json written to " << json_path << ")\n";
  }
  return no_loss ? 0 : 1;
}

// ---- link-fault ablation ------------------------------------------------
//
// The multi-DFE live path's robustness contract, measured end to end: the
// same closed-loop load is served by a partitioned LinkedEngine replica
// (4 StreamEngine segments over 3 MaxRing links) twice — once healthy,
// once with link 1 permanently killed by fault injection a few frames
// into the warm-up. The link watchdog escalates, the failover ladder
// recompiles a degraded plan with the dead link derated to health 0, and
// the measured window below runs steady state on that plan. The bar is
// served throughput at >= 70% of the healthy baseline with ZERO request
// errors and the failover actually observed — the farm degrades to fewer
// segments instead of collapsing or losing work.

constexpr const char* kLinkedBackend = "linked-4dfe-bench";

int run_linkfault() {
  bench::heading("Link-fault ablation",
                 "closed-loop load at a 4-segment linked replica vs the "
                 "same replica with MaxRing link 1 killed mid-warm-up");

  // vgg_like(16, ...) expands to a purely sequential chain, so the 4-DFE
  // cut {4, 9, 14} (one link per maxpool boundary) is always chain-valid.
  const NetworkSpec spec = models::vgg_like(16, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 77);
  if (backend_registry().find(kLinkedBackend) == nullptr) {
    LinkedEngineOptions defaults;
    defaults.cut_after_nodes = {4, 9, 14};
    // Tight watchdog so the seeded death escalates inside the warm-up.
    defaults.ack_timeout_us = 2'000;
    defaults.max_retransmits = 3;
    defaults.retransmit_backoff_us = 200;
    (void)backend_registry().register_backend(
        make_linked_backend(defaults, kLinkedBackend));
  }
  SessionConfig session_config;
  session_config.fast_estimate = true;
  const std::vector<IntTensor> images = synthetic_batch(8, 16, 16, 3, 91);

  // Both farms live for the whole measurement, windows interleaved
  // healthy/faulted per repeat: machine drift (and a 1-core box's mood)
  // hits both arms alike, so the throughput ratio survives run-to-run
  // noise that would sink any sequential A-then-B comparison.
  SessionConfig faulted_sc = session_config;
  faulted_sc.engine.faults.add(FaultPlan::link_death(
      /*link=*/1, /*run=*/0, /*after_frames=*/4));
  const auto farm_config = [] {
    ServerConfig cfg;
    cfg.pool = {{kLinkedBackend, 1}};
    cfg.max_batch = 8;
    cfg.batch_timeout_us = 500;
    cfg.queue_capacity = 1024;
    cfg.max_retries = 3;
    cfg.retry_backoff_us = 100;
    return cfg;
  }();
  DfeServer healthy_farm(spec, params, farm_config, session_config);
  DfeServer faulted_farm(spec, params, farm_config, faulted_sc);
  LoadGenerator healthy_load(healthy_farm, images);
  LoadGenerator faulted_load(faulted_farm, images);
  // Warm-up triggers the seeded death and the degraded-plan recompile on
  // the faulted arm, so the windows below are steady state on both plans.
  (void)healthy_load.closed_loop(/*clients=*/4, /*requests_per_client=*/4);
  (void)faulted_load.closed_loop(/*clients=*/4, /*requests_per_client=*/4);

  struct Arm {
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    double wall_s = 0.0;
    double p50_us = 0.0;  // of the last window
    double p99_us = 0.0;

    [[nodiscard]] double qps() const {
      return wall_s > 0.0 ? static_cast<double>(ok) / wall_s : 0.0;
    }
  };
  Arm healthy;
  Arm faulted;
  constexpr int kRepeats = 4;
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (const bool fault_arm : {false, true}) {
      LoadGenerator& load = fault_arm ? faulted_load : healthy_load;
      Arm& arm = fault_arm ? faulted : healthy;
      const LoadResult r =
          load.closed_loop(/*clients=*/8, /*requests_per_client=*/8);
      arm.ok += r.ok;
      arm.errors += r.errors;
      arm.wall_s += r.wall_seconds;
      arm.p50_us = r.p50_us;
      arm.p99_us = r.p99_us;
    }
  }
  healthy_farm.stop();
  faulted_farm.stop();
  const MetricsSnapshot hm = healthy_farm.metrics().snapshot();
  const MetricsSnapshot fm = faulted_farm.metrics().snapshot();
  const double healthy_qps = healthy.qps();
  const double faulted_qps = faulted.qps();
  const bool no_loss = healthy.errors == 0 && faulted.errors == 0 &&
                       hm.errors == 0 && fm.errors == 0;
  const bool failover_seen = fm.plan_failovers >= 1;

  Table t({"configuration", "qps", "p50 us", "p99 us", "frames",
           "retransmits", "failovers", "link 1"});
  std::ostringstream json;
  json << "{\n  \"scenarios\": [\n";
  for (const bool fault_arm : {false, true}) {
    const Arm& arm = fault_arm ? faulted : healthy;
    const MetricsSnapshot& m = fault_arm ? fm : hm;
    const double link1 = m.links > 1 ? m.link_health[1] : -1.0;
    t.add_row({fault_arm ? "link 1 dead (failed over)" : "healthy 4-segment",
               Table::num(arm.qps(), 1), Table::num(arm.p50_us, 0),
               Table::num(arm.p99_us, 0), Table::integer(m.link_frames),
               Table::integer(m.link_retransmits),
               Table::integer(m.plan_failovers), Table::num(link1, 2)});
    json << "    {\"label\": \""
         << (fault_arm ? "link 1 dead (failed over)" : "healthy 4-segment")
         << "\", \"qps\": " << arm.qps() << ", \"p50_us\": " << arm.p50_us
         << ", \"p99_us\": " << arm.p99_us << ", \"ok\": " << arm.ok
         << ", \"errors\": " << arm.errors
         << ", \"link_frames\": " << m.link_frames
         << ", \"link_retransmits\": " << m.link_retransmits
         << ", \"plan_failovers\": " << m.plan_failovers
         << ", \"link1_health\": " << link1 << "}" << (fault_arm ? "" : ",")
         << "\n";
  }
  bench::emit(t, "bench_linkfault");
  const double ratio = healthy_qps > 0.0 ? faulted_qps / healthy_qps : 0.0;
  json << "  ],\n  \"degraded_over_healthy\": " << ratio
       << ",\n  \"zero_lost\": " << (no_loss ? "true" : "false")
       << ",\n  \"failover_observed\": " << (failover_seen ? "true" : "false")
       << "\n}\n";
  std::cout << "\ndegraded/healthy served throughput: "
            << Table::num(ratio, 2)
            << " (acceptance bar: >= 0.70, zero lost requests, failover "
               "observed)\n\n"
            << json.str();
  const char* csv_dir = std::getenv("QNN_CSV_DIR");
  const std::string json_path =
      (csv_dir != nullptr ? std::string(csv_dir) + "/" : std::string()) +
      "BENCH_linkfault.json";
  std::ofstream jf(json_path);
  if (jf && (jf << json.str())) {
    std::cout << "(json written to " << json_path << ")\n";
  }
  return ratio >= 0.70 && no_loss && failover_seen ? 0 : 1;
}

int run() {
  bench::heading("Serving throughput/latency",
                 "closed-loop load vs. replica count and micro-batching; "
                 "open-loop Poisson overload at the end");

  const NetworkSpec spec = models::tiny(8, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 80);
  SessionConfig session_config;
  session_config.fast_estimate = true;
  const std::vector<IntTensor> images = synthetic_batch(8, 8, 8, 3, 81);

  constexpr int kClients = 64;
  constexpr int kRequestsPerClient = 8;
  const std::vector<Scenario> scenarios = {
      {"1 replica, unbatched", 1, 1},
      {"1 replica, batch 16", 1, 16},
      {"4 replicas, unbatched", 4, 1},
      {"4 replicas, batch 16", 4, 16},
      {"4 replicas, batch 16, pooled engine", 4, 16, ExecutorKind::kPooled},
  };

  Table t({"configuration", "replicas", "max_batch", "qps", "p50 us",
           "p95 us", "p99 us", "mean batch", "speedup"});
  std::ostringstream json;
  json << "{\n  \"scenarios\": [\n";
  double baseline_qps = 0.0;
  double farm_qps = 0.0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& sc = scenarios[i];
    ServerConfig cfg;
    cfg.replicas = sc.replicas;
    cfg.max_batch = sc.max_batch;
    cfg.batch_timeout_us = 5000;
    cfg.queue_capacity = 1024;
    session_config.engine.executor = sc.engine;
    DfeServer server(spec, params, cfg, session_config);
    LoadGenerator gen(server, images);
    const LoadResult r = gen.closed_loop(kClients, kRequestsPerClient);
    server.stop();
    const double batch_mean = server.metrics().snapshot().mean_batch_size();
    if (i == 0) baseline_qps = r.achieved_qps;
    if (sc.replicas == 4 && sc.max_batch > 1 &&
        sc.engine == ExecutorKind::kThreadPerKernel) {
      farm_qps = r.achieved_qps;
    }
    const double speedup =
        baseline_qps > 0.0 ? r.achieved_qps / baseline_qps : 0.0;
    t.add_row({sc.label, Table::integer(sc.replicas),
               Table::integer(sc.max_batch), Table::num(r.achieved_qps, 1),
               Table::num(r.p50_us, 0), Table::num(r.p95_us, 0),
               Table::num(r.p99_us, 0), Table::num(batch_mean, 2),
               Table::num(speedup, 2)});
    json << "    {\"label\": \"" << sc.label
         << "\", \"replicas\": " << sc.replicas << ", \"executor\": \""
         << (sc.engine == ExecutorKind::kPooled ? "pooled" : "thread")
         << "\", \"max_batch\": " << sc.max_batch
         << ", \"qps\": " << r.achieved_qps << ", \"p50_us\": " << r.p50_us
         << ", \"p95_us\": " << r.p95_us << ", \"p99_us\": " << r.p99_us
         << ", \"mean_batch\": " << batch_mean << ", \"speedup\": " << speedup
         << "}" << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  bench::emit(t, "bench_serving");
  const double speedup =
      baseline_qps > 0.0 ? farm_qps / baseline_qps : 0.0;
  std::cout << "\nfarm speedup (4 replicas + batching vs 1 unbatched, "
               "board-model engine): "
            << Table::num(speedup, 2) << "x (acceptance bar: >= 2x)\n";

  // Overload: a deliberately small server under an open-loop Poisson flood
  // on the default (pooled) engine.
  session_config.engine = {};
  ServerConfig small;
  small.replicas = 1;
  small.max_batch = 4;
  small.batch_timeout_us = 500;
  small.queue_capacity = 8;
  small.default_deadline_us = 50000;
  DfeServer server(spec, params, small, session_config);
  LoadGenerator gen(server, images);
  const LoadResult overload =
      gen.open_loop(/*rate_qps=*/4000.0, /*total_requests=*/400, /*seed=*/82);
  server.stop();
  std::cout << "\noverload (open loop, 4000 qps offered at a 1-replica, "
               "8-deep-queue server):\n  "
            << overload.str() << "\n\n"
            << server.metrics_report();

  const MetricsSnapshot s = server.metrics().snapshot();
  json << "  ],\n  \"farm_speedup\": " << speedup
       << ",\n  \"overload\": {\"offered\": " << overload.offered
       << ", \"ok\": " << overload.ok
       << ", \"rejected_overload\": " << s.rejected_overload
       << ", \"rejected_deadline\": " << s.rejected_deadline
       << ", \"e2e_p50_us\": " << server.metrics().end_to_end().percentile(50)
       << ", \"e2e_p95_us\": " << server.metrics().end_to_end().percentile(95)
       << ", \"e2e_p99_us\": " << server.metrics().end_to_end().percentile(99)
       << "}\n}\n";
  std::cout << "\n" << json.str();

  // Robustness ablation: the identical 4-replica farm, healthy versus with
  // replica 0 permanently wedged by an injected kernel hang. The healing
  // stack (watchdog budget cancel -> retry on another replica -> quarantine
  // -> brownout) must keep steady-state throughput at >= 70% of the healthy
  // baseline — the farm degrades to 3/4 capacity instead of collapsing.
  bench::heading("Robustness ablation",
                 "closed-loop load at a healthy 4-replica farm vs the same "
                 "farm with 1 replica hung by fault injection");
  Table rt({"configuration", "qps", "p50 us", "p99 us", "retries",
            "cancels", "quarantines", "replica 0"});
  double healthy_qps = 0.0;
  double faulted_qps = 0.0;
  std::ostringstream rj;
  rj << "{\n  \"scenarios\": [\n";
  for (const bool faulted : {false, true}) {
    SessionConfig sc = session_config;
    if (faulted) {
      FaultEvent hang =
          FaultPlan::kernel_hang("", /*run=*/0, /*step=*/0);
      hang.target_index = 0;
      hang.replica = 0;
      hang.last_run = 1'000'000'000;  // wedged for the whole bench
      sc.engine.faults.add(hang);
    }
    ServerConfig cfg;
    cfg.replicas = 4;
    cfg.max_batch = 8;
    cfg.batch_timeout_us = 1000;
    cfg.queue_capacity = 1024;
    cfg.run_budget_us = 20'000;
    cfg.watchdog_period_us = 500;
    cfg.quarantine_after = 1;
    cfg.max_retries = 3;
    cfg.retry_backoff_us = 100;
    DfeServer farm(spec, params, cfg, sc);
    LoadGenerator load(farm, images);
    // Warm-up discovers the wedged replica (budget cancel + quarantine)
    // before the measured window, so the run below is steady state.
    (void)load.closed_loop(/*clients=*/8, /*requests_per_client=*/4);
    const LoadResult r =
        load.closed_loop(/*clients=*/32, /*requests_per_client=*/8);
    farm.stop();
    const MetricsSnapshot m = farm.metrics().snapshot();
    const char* replica0 = to_string(farm.replica_health(0));
    (faulted ? faulted_qps : healthy_qps) = r.achieved_qps;
    rt.add_row({faulted ? "1-of-4 replicas hung" : "healthy baseline",
                Table::num(r.achieved_qps, 1), Table::num(r.p50_us, 0),
                Table::num(r.p99_us, 0), Table::integer(m.retries),
                Table::integer(m.watchdog_budget_cancels +
                               m.watchdog_deadline_cancels),
                Table::integer(m.quarantines), replica0});
    rj << "    {\"label\": \""
       << (faulted ? "1-of-4 replicas hung" : "healthy baseline")
       << "\", \"qps\": " << r.achieved_qps << ", \"p50_us\": " << r.p50_us
       << ", \"p99_us\": " << r.p99_us << ", \"ok\": " << r.ok
       << ", \"errors\": " << r.errors << ", \"retries\": " << m.retries
       << ", \"watchdog_cancels\": "
       << (m.watchdog_budget_cancels + m.watchdog_deadline_cancels)
       << ", \"quarantines\": " << m.quarantines
       << ", \"brownout_entries\": " << m.brownout_entries
       << ", \"replica0_health\": \"" << replica0 << "\"}"
       << (faulted ? "" : ",") << "\n";
  }
  bench::emit(rt, "bench_robustness");
  const double ratio = healthy_qps > 0.0 ? faulted_qps / healthy_qps : 0.0;
  rj << "  ],\n  \"degraded_over_healthy\": " << ratio << "\n}\n";
  std::cout << "\ndegraded/healthy throughput: " << Table::num(ratio, 2)
            << " (acceptance bar: >= 0.70)\n\n"
            << rj.str();
  const char* csv_dir = std::getenv("QNN_CSV_DIR");
  const std::string json_path =
      (csv_dir != nullptr ? std::string(csv_dir) + "/" : std::string()) +
      "BENCH_robustness.json";
  std::ofstream jf(json_path);
  if (jf && (jf << rj.str())) {
    std::cout << "(json written to " << json_path << ")\n";
  }
  const int backends_rc = run_backends();
  const int autotune_rc = run_autotune();
  const int linkfault_rc = run_linkfault();
  return speedup >= 2.0 && ratio >= 0.70 && backends_rc == 0 &&
                 autotune_rc == 0 && linkfault_rc == 0
             ? 0
             : 1;
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  // --backends-only / --autotune-only: just one ablation and its bar —
  // the pieces tools/check.sh runs under PERF=1.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--backends-only") == 0) {
      return qnn::run_backends();
    }
    if (std::strcmp(argv[i], "--autotune-only") == 0) {
      return qnn::run_autotune();
    }
    if (std::strcmp(argv[i], "--link-fault-only") == 0) {
      return qnn::run_linkfault();
    }
  }
  return qnn::run();
}
