// Serving-layer benchmark: throughput and latency of DfeServer versus
// replica count and micro-batching, plus behavior at the overload cliff.
//
// The paper's pipeline only delivers its throughput while it is kept full
// (§III-B); this bench quantifies how much the serving layer contributes:
// the same closed-loop load is driven at a single unbatched replica (the
// naive DfeSession::infer() deployment) and at replica farms with dynamic
// micro-batching. Replicas are pinned to the thread-per-kernel executor —
// the hardware-faithful board model, where every kernel is concurrently
// live and each run() pays the full pipeline spin-up that micro-batching
// exists to amortize. The acceptance bar for the serving subsystem is the
// "4 replicas + batching" row reaching >= 2x the single-replica-unbatched
// throughput under that engine. A final row runs the farm on the default
// pooled engine, whose per-run cost is one worker spawn instead of one
// per kernel: the engine now does most of the amortizing itself, which is
// why its unbatched baseline sits far above the board model's. A final
// open-loop Poisson run pushes a small server past saturation to show
// admission control rejecting instead of queuing without bound.
//
// Output: the usual table (CSV via QNN_CSV_DIR) plus a JSON block on
// stdout for scripted consumption.
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "io/synthetic.h"
#include "serve/load_generator.h"
#include "serve/server.h"

namespace qnn {
namespace {

struct Scenario {
  std::string label;
  int replicas;
  int max_batch;
  ExecutorKind engine = ExecutorKind::kThreadPerKernel;
};

int run() {
  bench::heading("Serving throughput/latency",
                 "closed-loop load vs. replica count and micro-batching; "
                 "open-loop Poisson overload at the end");

  const NetworkSpec spec = models::tiny(8, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 80);
  SessionConfig session_config;
  session_config.fast_estimate = true;
  const std::vector<IntTensor> images = synthetic_batch(8, 8, 8, 3, 81);

  constexpr int kClients = 64;
  constexpr int kRequestsPerClient = 8;
  const std::vector<Scenario> scenarios = {
      {"1 replica, unbatched", 1, 1},
      {"1 replica, batch 16", 1, 16},
      {"4 replicas, unbatched", 4, 1},
      {"4 replicas, batch 16", 4, 16},
      {"4 replicas, batch 16, pooled engine", 4, 16, ExecutorKind::kPooled},
  };

  Table t({"configuration", "replicas", "max_batch", "qps", "p50 us",
           "p95 us", "p99 us", "mean batch", "speedup"});
  std::ostringstream json;
  json << "{\n  \"scenarios\": [\n";
  double baseline_qps = 0.0;
  double farm_qps = 0.0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& sc = scenarios[i];
    ServerConfig cfg;
    cfg.replicas = sc.replicas;
    cfg.max_batch = sc.max_batch;
    cfg.batch_timeout_us = 5000;
    cfg.queue_capacity = 1024;
    session_config.engine.executor = sc.engine;
    DfeServer server(spec, params, cfg, session_config);
    LoadGenerator gen(server, images);
    const LoadResult r = gen.closed_loop(kClients, kRequestsPerClient);
    server.stop();
    const double batch_mean = server.metrics().snapshot().mean_batch_size();
    if (i == 0) baseline_qps = r.achieved_qps;
    if (sc.replicas == 4 && sc.max_batch > 1 &&
        sc.engine == ExecutorKind::kThreadPerKernel) {
      farm_qps = r.achieved_qps;
    }
    const double speedup =
        baseline_qps > 0.0 ? r.achieved_qps / baseline_qps : 0.0;
    t.add_row({sc.label, Table::integer(sc.replicas),
               Table::integer(sc.max_batch), Table::num(r.achieved_qps, 1),
               Table::num(r.p50_us, 0), Table::num(r.p95_us, 0),
               Table::num(r.p99_us, 0), Table::num(batch_mean, 2),
               Table::num(speedup, 2)});
    json << "    {\"label\": \"" << sc.label
         << "\", \"replicas\": " << sc.replicas << ", \"executor\": \""
         << (sc.engine == ExecutorKind::kPooled ? "pooled" : "thread")
         << "\", \"max_batch\": " << sc.max_batch
         << ", \"qps\": " << r.achieved_qps << ", \"p50_us\": " << r.p50_us
         << ", \"p95_us\": " << r.p95_us << ", \"p99_us\": " << r.p99_us
         << ", \"mean_batch\": " << batch_mean << ", \"speedup\": " << speedup
         << "}" << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  bench::emit(t, "bench_serving");
  const double speedup =
      baseline_qps > 0.0 ? farm_qps / baseline_qps : 0.0;
  std::cout << "\nfarm speedup (4 replicas + batching vs 1 unbatched, "
               "board-model engine): "
            << Table::num(speedup, 2) << "x (acceptance bar: >= 2x)\n";

  // Overload: a deliberately small server under an open-loop Poisson flood
  // on the default (pooled) engine.
  session_config.engine = {};
  ServerConfig small;
  small.replicas = 1;
  small.max_batch = 4;
  small.batch_timeout_us = 500;
  small.queue_capacity = 8;
  small.default_deadline_us = 50000;
  DfeServer server(spec, params, small, session_config);
  LoadGenerator gen(server, images);
  const LoadResult overload =
      gen.open_loop(/*rate_qps=*/4000.0, /*total_requests=*/400, /*seed=*/82);
  server.stop();
  std::cout << "\noverload (open loop, 4000 qps offered at a 1-replica, "
               "8-deep-queue server):\n  "
            << overload.str() << "\n\n"
            << server.metrics_report();

  const MetricsSnapshot s = server.metrics().snapshot();
  json << "  ],\n  \"farm_speedup\": " << speedup
       << ",\n  \"overload\": {\"offered\": " << overload.offered
       << ", \"ok\": " << overload.ok
       << ", \"rejected_overload\": " << s.rejected_overload
       << ", \"rejected_deadline\": " << s.rejected_deadline
       << ", \"e2e_p50_us\": " << server.metrics().end_to_end().percentile(50)
       << ", \"e2e_p95_us\": " << server.metrics().end_to_end().percentile(95)
       << ", \"e2e_p99_us\": " << server.metrics().end_to_end().percentile(99)
       << "}\n}\n";
  std::cout << "\n" << json.str();
  return speedup >= 2.0 ? 0 : 1;
}

}  // namespace
}  // namespace qnn

int main() { return qnn::run(); }
