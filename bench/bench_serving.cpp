// Serving-layer benchmark: throughput and latency of DfeServer versus
// replica count and micro-batching, plus behavior at the overload cliff.
//
// The paper's pipeline only delivers its throughput while it is kept full
// (§III-B); this bench quantifies how much the serving layer contributes:
// the same closed-loop load is driven at a single unbatched replica (the
// naive DfeSession::infer() deployment) and at replica farms with dynamic
// micro-batching. Replicas are pinned to the thread-per-kernel executor —
// the hardware-faithful board model, where every kernel is concurrently
// live and each run() pays the full pipeline spin-up that micro-batching
// exists to amortize. The acceptance bar for the serving subsystem is the
// "4 replicas + batching" row reaching >= 2x the single-replica-unbatched
// throughput under that engine. A final row runs the farm on the default
// pooled engine, whose per-run cost is one worker spawn instead of one
// per kernel: the engine now does most of the amortizing itself, which is
// why its unbatched baseline sits far above the board model's. A final
// open-loop Poisson run pushes a small server past saturation to show
// admission control rejecting instead of queuing without bound.
//
// Output: the usual table (CSV via QNN_CSV_DIR) plus a JSON block on
// stdout for scripted consumption.
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "backend/builtin.h"
#include "bench_util.h"
#include "fault/fault.h"
#include "io/synthetic.h"
#include "serve/load_generator.h"
#include "serve/server.h"

namespace qnn {
namespace {

struct Scenario {
  std::string label;
  int replicas;
  int max_batch;
  ExecutorKind engine = ExecutorKind::kThreadPerKernel;
};

// ---- mixed-pool ablation ------------------------------------------------
//
// The backend-registry payoff in one table: the same mixed tight +
// best-effort load is driven at (a) a fast-only pool, (b) a fast+slow pool
// with deadline-class routing, and (c) the same mixed pool with routing
// off (naive: any non-shadow replica takes anything). Tight-deadline
// goodput — requests that complete *within* their deadline per second —
// is the score. Naive routing lets the idle slow replicas pull tight work
// they cannot finish in time, so (b) must beat (c) by >= 1.3x; that bar
// is this bench's exit code and the PERF=1 gate in tools/check.sh.

struct PoolScore {
  std::uint64_t tight_ok = 0;      // completed within the tight deadline
  std::uint64_t tight_missed = 0;  // expired, errored, or finished late
  std::uint64_t be_ok = 0;
  double window_s = 0.0;

  [[nodiscard]] double tight_goodput_qps() const {
    return window_s > 0.0 ? static_cast<double>(tight_ok) / window_s : 0.0;
  }
  [[nodiscard]] double be_qps() const {
    return window_s > 0.0 ? static_cast<double>(be_ok) / window_s : 0.0;
  }
};

constexpr std::int64_t kTightUs = 4000;
constexpr const char* kSlowBackend = "reference-5ms";

PoolScore drive_mixed_load(DfeServer& server,
                           const std::vector<IntTensor>& images) {
  // Fixed-wall-clock closed loop: 4 clients hammer tight requests, 4 push
  // best-effort work, for the same window in every scenario — so the
  // goodput denominators are comparable across pools.
  constexpr int kTightClients = 4;
  constexpr int kBeClients = 4;
  constexpr auto kWindow = std::chrono::milliseconds(400);
  std::atomic<std::uint64_t> tight_ok{0};
  std::atomic<std::uint64_t> tight_missed{0};
  std::atomic<std::uint64_t> be_ok{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kTightClients + kBeClients);
  for (int c = 0; c < kTightClients + kBeClients; ++c) {
    const bool tight = c < kTightClients;
    clients.emplace_back([&, c, tight] {
      std::size_t i = static_cast<std::size_t>(c);
      while (std::chrono::steady_clock::now() - t0 < kWindow) {
        const IntTensor& img = images[i++ % images.size()];
        const InferenceResult r =
            server.submit(img, tight ? kTightUs : 0);
        if (tight) {
          const bool in_time = r.ok() && r.total_us <= kTightUs;
          (in_time ? tight_ok : tight_missed).fetch_add(1);
        } else if (r.ok()) {
          be_ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  PoolScore score;
  score.window_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  score.tight_ok = tight_ok.load();
  score.tight_missed = tight_missed.load();
  score.be_ok = be_ok.load();
  return score;
}

int run_backends() {
  bench::heading("Mixed-pool backend ablation",
                 "tight-deadline goodput: fast-only vs fast+slow with "
                 "deadline-class routing vs the same pool routed naively");

  // A deliberately slow tier with a 5 ms/image floor: anything tight
  // (<= 4 ms) that lands on it is lost by construction.
  if (backend_registry().find(kSlowBackend) == nullptr) {
    (void)backend_registry().register_backend(
        make_reference_backend(5000, kSlowBackend));
  }

  const NetworkSpec spec = models::tiny(8, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 83);
  SessionConfig session_config;
  session_config.fast_estimate = true;
  const std::vector<IntTensor> images = synthetic_batch(8, 8, 8, 3, 84);

  struct PoolScenario {
    std::string label;
    std::vector<ServerConfig::PoolEntry> pool;
    bool route_by_deadline;
  };
  const std::vector<PoolScenario> scenarios = {
      {"fast-only (1x engine)", {{"engine", 1}}, true},
      {"mixed, deadline routing", {{"engine", 1}, {kSlowBackend, 2}}, true},
      {"mixed, naive routing", {{"engine", 1}, {kSlowBackend, 2}}, false},
  };

  Table t({"configuration", "tight ok", "tight missed", "tight goodput qps",
           "best-effort qps"});
  std::ostringstream json;
  json << "{\n  \"scenarios\": [\n";
  double routed_goodput = 0.0;
  double naive_goodput = 0.0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const PoolScenario& sc = scenarios[i];
    ServerConfig cfg;
    cfg.pool = sc.pool;
    cfg.route_by_deadline = sc.route_by_deadline;
    cfg.tight_deadline_us = kTightUs;
    cfg.max_batch = 8;
    cfg.batch_timeout_us = 200;
    cfg.queue_capacity = 2048;
    cfg.quarantine_after = 1000;  // keep healing out of the comparison
    DfeServer server(spec, params, cfg, session_config);
    const PoolScore score = drive_mixed_load(server, images);
    server.stop();
    if (sc.pool.size() > 1) {
      (sc.route_by_deadline ? routed_goodput : naive_goodput) =
          score.tight_goodput_qps();
    }
    t.add_row({sc.label, Table::integer(score.tight_ok),
               Table::integer(score.tight_missed),
               Table::num(score.tight_goodput_qps(), 1),
               Table::num(score.be_qps(), 1)});
    json << "    {\"label\": \"" << sc.label
         << "\", \"route_by_deadline\": "
         << (sc.route_by_deadline ? "true" : "false")
         << ", \"tight_ok\": " << score.tight_ok
         << ", \"tight_missed\": " << score.tight_missed
         << ", \"tight_goodput_qps\": " << score.tight_goodput_qps()
         << ", \"best_effort_qps\": " << score.be_qps()
         << ", \"window_s\": " << score.window_s << "}"
         << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  bench::emit(t, "bench_backends");
  // Guard the degenerate naive-goodput-of-zero case (total collapse): the
  // routed pool then wins by any margin.
  const double ratio = naive_goodput > 0.0
                           ? routed_goodput / naive_goodput
                           : (routed_goodput > 0.0 ? 1e9 : 0.0);
  json << "  ],\n  \"routed_over_naive_tight_goodput\": " << ratio
       << "\n}\n";
  std::cout << "\nrouted/naive tight-deadline goodput: "
            << Table::num(ratio, 2) << "x (acceptance bar: >= 1.3x)\n\n"
            << json.str();
  const char* csv_dir = std::getenv("QNN_CSV_DIR");
  const std::string json_path =
      (csv_dir != nullptr ? std::string(csv_dir) + "/" : std::string()) +
      "BENCH_backends.json";
  std::ofstream jf(json_path);
  if (jf && (jf << json.str())) {
    std::cout << "(json written to " << json_path << ")\n";
  }
  return ratio >= 1.3 ? 0 : 1;
}

int run() {
  bench::heading("Serving throughput/latency",
                 "closed-loop load vs. replica count and micro-batching; "
                 "open-loop Poisson overload at the end");

  const NetworkSpec spec = models::tiny(8, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 80);
  SessionConfig session_config;
  session_config.fast_estimate = true;
  const std::vector<IntTensor> images = synthetic_batch(8, 8, 8, 3, 81);

  constexpr int kClients = 64;
  constexpr int kRequestsPerClient = 8;
  const std::vector<Scenario> scenarios = {
      {"1 replica, unbatched", 1, 1},
      {"1 replica, batch 16", 1, 16},
      {"4 replicas, unbatched", 4, 1},
      {"4 replicas, batch 16", 4, 16},
      {"4 replicas, batch 16, pooled engine", 4, 16, ExecutorKind::kPooled},
  };

  Table t({"configuration", "replicas", "max_batch", "qps", "p50 us",
           "p95 us", "p99 us", "mean batch", "speedup"});
  std::ostringstream json;
  json << "{\n  \"scenarios\": [\n";
  double baseline_qps = 0.0;
  double farm_qps = 0.0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& sc = scenarios[i];
    ServerConfig cfg;
    cfg.replicas = sc.replicas;
    cfg.max_batch = sc.max_batch;
    cfg.batch_timeout_us = 5000;
    cfg.queue_capacity = 1024;
    session_config.engine.executor = sc.engine;
    DfeServer server(spec, params, cfg, session_config);
    LoadGenerator gen(server, images);
    const LoadResult r = gen.closed_loop(kClients, kRequestsPerClient);
    server.stop();
    const double batch_mean = server.metrics().snapshot().mean_batch_size();
    if (i == 0) baseline_qps = r.achieved_qps;
    if (sc.replicas == 4 && sc.max_batch > 1 &&
        sc.engine == ExecutorKind::kThreadPerKernel) {
      farm_qps = r.achieved_qps;
    }
    const double speedup =
        baseline_qps > 0.0 ? r.achieved_qps / baseline_qps : 0.0;
    t.add_row({sc.label, Table::integer(sc.replicas),
               Table::integer(sc.max_batch), Table::num(r.achieved_qps, 1),
               Table::num(r.p50_us, 0), Table::num(r.p95_us, 0),
               Table::num(r.p99_us, 0), Table::num(batch_mean, 2),
               Table::num(speedup, 2)});
    json << "    {\"label\": \"" << sc.label
         << "\", \"replicas\": " << sc.replicas << ", \"executor\": \""
         << (sc.engine == ExecutorKind::kPooled ? "pooled" : "thread")
         << "\", \"max_batch\": " << sc.max_batch
         << ", \"qps\": " << r.achieved_qps << ", \"p50_us\": " << r.p50_us
         << ", \"p95_us\": " << r.p95_us << ", \"p99_us\": " << r.p99_us
         << ", \"mean_batch\": " << batch_mean << ", \"speedup\": " << speedup
         << "}" << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  bench::emit(t, "bench_serving");
  const double speedup =
      baseline_qps > 0.0 ? farm_qps / baseline_qps : 0.0;
  std::cout << "\nfarm speedup (4 replicas + batching vs 1 unbatched, "
               "board-model engine): "
            << Table::num(speedup, 2) << "x (acceptance bar: >= 2x)\n";

  // Overload: a deliberately small server under an open-loop Poisson flood
  // on the default (pooled) engine.
  session_config.engine = {};
  ServerConfig small;
  small.replicas = 1;
  small.max_batch = 4;
  small.batch_timeout_us = 500;
  small.queue_capacity = 8;
  small.default_deadline_us = 50000;
  DfeServer server(spec, params, small, session_config);
  LoadGenerator gen(server, images);
  const LoadResult overload =
      gen.open_loop(/*rate_qps=*/4000.0, /*total_requests=*/400, /*seed=*/82);
  server.stop();
  std::cout << "\noverload (open loop, 4000 qps offered at a 1-replica, "
               "8-deep-queue server):\n  "
            << overload.str() << "\n\n"
            << server.metrics_report();

  const MetricsSnapshot s = server.metrics().snapshot();
  json << "  ],\n  \"farm_speedup\": " << speedup
       << ",\n  \"overload\": {\"offered\": " << overload.offered
       << ", \"ok\": " << overload.ok
       << ", \"rejected_overload\": " << s.rejected_overload
       << ", \"rejected_deadline\": " << s.rejected_deadline
       << ", \"e2e_p50_us\": " << server.metrics().end_to_end().percentile(50)
       << ", \"e2e_p95_us\": " << server.metrics().end_to_end().percentile(95)
       << ", \"e2e_p99_us\": " << server.metrics().end_to_end().percentile(99)
       << "}\n}\n";
  std::cout << "\n" << json.str();

  // Robustness ablation: the identical 4-replica farm, healthy versus with
  // replica 0 permanently wedged by an injected kernel hang. The healing
  // stack (watchdog budget cancel -> retry on another replica -> quarantine
  // -> brownout) must keep steady-state throughput at >= 70% of the healthy
  // baseline — the farm degrades to 3/4 capacity instead of collapsing.
  bench::heading("Robustness ablation",
                 "closed-loop load at a healthy 4-replica farm vs the same "
                 "farm with 1 replica hung by fault injection");
  Table rt({"configuration", "qps", "p50 us", "p99 us", "retries",
            "cancels", "quarantines", "replica 0"});
  double healthy_qps = 0.0;
  double faulted_qps = 0.0;
  std::ostringstream rj;
  rj << "{\n  \"scenarios\": [\n";
  for (const bool faulted : {false, true}) {
    SessionConfig sc = session_config;
    if (faulted) {
      FaultEvent hang =
          FaultPlan::kernel_hang("", /*run=*/0, /*step=*/0);
      hang.target_index = 0;
      hang.replica = 0;
      hang.last_run = 1'000'000'000;  // wedged for the whole bench
      sc.engine.faults.add(hang);
    }
    ServerConfig cfg;
    cfg.replicas = 4;
    cfg.max_batch = 8;
    cfg.batch_timeout_us = 1000;
    cfg.queue_capacity = 1024;
    cfg.run_budget_us = 20'000;
    cfg.watchdog_period_us = 500;
    cfg.quarantine_after = 1;
    cfg.max_retries = 3;
    cfg.retry_backoff_us = 100;
    DfeServer farm(spec, params, cfg, sc);
    LoadGenerator load(farm, images);
    // Warm-up discovers the wedged replica (budget cancel + quarantine)
    // before the measured window, so the run below is steady state.
    (void)load.closed_loop(/*clients=*/8, /*requests_per_client=*/4);
    const LoadResult r =
        load.closed_loop(/*clients=*/32, /*requests_per_client=*/8);
    farm.stop();
    const MetricsSnapshot m = farm.metrics().snapshot();
    const char* replica0 = to_string(farm.replica_health(0));
    (faulted ? faulted_qps : healthy_qps) = r.achieved_qps;
    rt.add_row({faulted ? "1-of-4 replicas hung" : "healthy baseline",
                Table::num(r.achieved_qps, 1), Table::num(r.p50_us, 0),
                Table::num(r.p99_us, 0), Table::integer(m.retries),
                Table::integer(m.watchdog_budget_cancels +
                               m.watchdog_deadline_cancels),
                Table::integer(m.quarantines), replica0});
    rj << "    {\"label\": \""
       << (faulted ? "1-of-4 replicas hung" : "healthy baseline")
       << "\", \"qps\": " << r.achieved_qps << ", \"p50_us\": " << r.p50_us
       << ", \"p99_us\": " << r.p99_us << ", \"ok\": " << r.ok
       << ", \"errors\": " << r.errors << ", \"retries\": " << m.retries
       << ", \"watchdog_cancels\": "
       << (m.watchdog_budget_cancels + m.watchdog_deadline_cancels)
       << ", \"quarantines\": " << m.quarantines
       << ", \"brownout_entries\": " << m.brownout_entries
       << ", \"replica0_health\": \"" << replica0 << "\"}"
       << (faulted ? "" : ",") << "\n";
  }
  bench::emit(rt, "bench_robustness");
  const double ratio = healthy_qps > 0.0 ? faulted_qps / healthy_qps : 0.0;
  rj << "  ],\n  \"degraded_over_healthy\": " << ratio << "\n}\n";
  std::cout << "\ndegraded/healthy throughput: " << Table::num(ratio, 2)
            << " (acceptance bar: >= 0.70)\n\n"
            << rj.str();
  const char* csv_dir = std::getenv("QNN_CSV_DIR");
  const std::string json_path =
      (csv_dir != nullptr ? std::string(csv_dir) + "/" : std::string()) +
      "BENCH_robustness.json";
  std::ofstream jf(json_path);
  if (jf && (jf << rj.str())) {
    std::cout << "(json written to " << json_path << ")\n";
  }
  const int backends_rc = run_backends();
  return speedup >= 2.0 && ratio >= 0.70 && backends_rc == 0 ? 0 : 1;
}

}  // namespace
}  // namespace qnn

int main(int argc, char** argv) {
  // --backends-only: just the mixed-pool ablation and its >= 1.3x bar —
  // the piece tools/check.sh runs under PERF=1.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--backends-only") == 0) {
      return qnn::run_backends();
    }
  }
  return qnn::run();
}
