// Ablation: what do skip connections actually cost? (§III-B5, §IV-B2)
//
// The paper makes two statements that pull in different directions:
//  * §III-B5: per block, a skip connection needs one adder and one delay
//    buffer, and "the overhead ... is negligible";
//  * §IV-B2: ResNet-18 needs ~75% more LUTs than AlexNet, attributed to
//    the skip connections and depth, forcing a three-DFE split.
// This bench quantifies both views: per-block cost, whole-network cost
// (vs an identical conv ladder without skip infrastructure), and the
// runtime cost (which the streaming architecture absorbs entirely).
#include <iostream>

#include "bench_util.h"
#include "fpga/resource_model.h"
#include "perfmodel/fpga_estimate.h"

int main() {
  using namespace qnn;
  bench::heading("Skip-connection ablation",
                 "resnet18 vs an identical conv ladder with the skip "
                 "infrastructure removed (projections, adders, buffers).");

  const Pipeline with = expand(models::resnet18(224, 1000, 2));
  const Pipeline without = expand(models::resnet18_noskip(224, 1000, 2));
  const NetworkResources rw = estimate_resources(with);
  const NetworkResources ro = estimate_resources(without);
  const auto fw = estimate_fpga(with);
  const auto fo = estimate_fpga(without);

  Table t({"metric", "with skips", "without", "overhead"});
  auto pct = [](double a, double b) {
    return "+" + Table::num(100.0 * (a / b - 1.0), 1) + "%";
  };
  t.add_row({"LUT", Table::integer(static_cast<std::int64_t>(rw.luts)),
             Table::integer(static_cast<std::int64_t>(ro.luts)),
             pct(rw.luts, ro.luts)});
  t.add_row({"FF", Table::integer(static_cast<std::int64_t>(rw.ffs)),
             Table::integer(static_cast<std::int64_t>(ro.ffs)),
             pct(rw.ffs, ro.ffs)});
  t.add_row({"BRAM Kbit",
             Table::integer(static_cast<std::int64_t>(rw.bram_kbits())),
             Table::integer(static_cast<std::int64_t>(ro.bram_kbits())),
             pct(rw.bram_kbits(), ro.bram_kbits())});
  t.add_row({"runtime ms", Table::num(1e3 * fw.seconds_per_image, 2),
             Table::num(1e3 * fo.seconds_per_image, 2),
             pct(fw.seconds_per_image, fo.seconds_per_image)});
  t.add_row({"DFEs", Table::integer(fw.num_dfes),
             Table::integer(fo.num_dfes), "-"});
  t.print(std::cout);

  bench::heading("Per-block skip cost (§III-B5)",
                 "One adder + one 16-bit delay buffer per residual block; "
                 "the buffer equals one conv line buffer and never stalls "
                 "(validated by the cycle simulator, see test_sim).");
  Table b({"block (Add node)", "channels", "buffer bits", "LUT", "FF"});
  for (const auto& n : rw.nodes) {
    if (n.kind != NodeKind::Add) continue;
    b.add_row({n.name, "-", Table::integer(n.skip_buffer_bits),
               Table::integer(static_cast<std::int64_t>(n.luts)),
               Table::integer(static_cast<std::int64_t>(n.ffs))});
  }
  b.print(std::cout);
  std::cout << "\nReading: each block's adder+buffer is small next to its "
               "two convolutions\n(the paper's 'negligible'), but 8 blocks "
               "of 16-bit plumbing explain ResNet's\nLUT surplus over "
               "AlexNet (the paper's three-DFE split).\n";
  return 0;
}
