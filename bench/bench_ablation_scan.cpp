// Ablation: depth-first vs width-first feature-map scan (§III-B1b).
//
// The paper's buffer-size argument: for an H x W x I input and K x K
// window, a depth-first scan buffers I*(W_p*(K-1) + K) values while a
// width-first scan needs W_p*H_p*(I-1) + H_p*(K-1) + K — per height unit,
// Theta(I*K) vs Theta(I*W + K). Since W >> K, depth-first wins by an order
// of magnitude on real layers. This bench evaluates both formulas on every
// convolution of the three paper networks.
#include <iostream>

#include "bench_util.h"
#include "dataflow/width_first_scanner.h"
#include "dataflow/window_scanner.h"

namespace {

// Both scan orders are real, tested implementations (window_scanner.h and
// width_first_scanner.h produce identical windows); the buffer sizes below
// are what those implementations actually retain.
std::int64_t depth_first_values(const qnn::Node& n) {
  return qnn::WindowScanner(n.in, n.k, n.stride, n.pad)
      .paper_buffer_values();
}

std::int64_t width_first_values(const qnn::Node& n) {
  return qnn::WidthFirstScanner(n.in, n.k, n.stride, n.pad).buffer_values();
}

}  // namespace

int main() {
  using namespace qnn;
  bench::heading("Depth-first vs width-first scan buffers (§III-B1b)",
                 "Buffered values per convolution kernel under the two scan "
                 "orders; the streaming engine implements depth-first.");

  for (const auto& w : bench::paper_workloads()) {
    const Pipeline p = expand(w.spec);
    Table t({"conv", "window", "depth-first", "width-first", "ratio"});
    std::int64_t df_total = 0;
    std::int64_t wf_total = 0;
    for (const auto& n : p.nodes) {
      if (n.kind != NodeKind::Conv || n.in.c < 2 || n.k < 2) continue;
      const std::int64_t df = depth_first_values(n);
      const std::int64_t wf = width_first_values(n);
      df_total += df;
      wf_total += wf;
      t.add_row({n.name,
                 std::to_string(n.k) + "x" + std::to_string(n.k) + "x" +
                     std::to_string(n.in.c),
                 Table::integer(df), Table::integer(wf),
                 Table::num(static_cast<double>(wf) /
                                static_cast<double>(df), 1) + "x"});
    }
    std::cout << w.label << ":\n";
    t.print(std::cout);
    std::cout << "total buffered values: depth-first " << df_total
              << " vs width-first " << wf_total << " ("
              << Table::num(static_cast<double>(wf_total) /
                                static_cast<double>(df_total), 1)
              << "x more)\n\n";
  }
  std::cout << "Reading: depth-first scan is why all images are streamed "
               "pixel by pixel\nand not channel by channel (§III-B1b).\n";
  return 0;
}
