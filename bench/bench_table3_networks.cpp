// Table III: comparison of ResNet-18 and AlexNet on the DFE platform —
// LUT, BRAM (Kbit), FF and runtime — plus the §IV-B2 depth-penalty
// analysis (ResNet-18 costs +17.5% on the DFE vs +42.5% on the GPU).
#include <iostream>

#include "bench_util.h"
#include "fpga/resource_model.h"
#include "perfmodel/fpga_estimate.h"
#include "perfmodel/gpu_model.h"

int main() {
  using namespace qnn;
  bench::heading("Table III — ResNet-18 vs AlexNet on the DFE",
                 "Resources from the calibrated model; runtime from the "
                 "cycle simulator @105 MHz.");

  const Pipeline alex = expand(models::alexnet(224, 1000, 2));
  const Pipeline res = expand(models::resnet18(224, 1000, 2));
  const NetworkResources ra = estimate_resources(alex);
  const NetworkResources rr = estimate_resources(res);
  const auto fa = estimate_fpga(alex);
  const auto fr = estimate_fpga(res);

  Table t({"metric", "AlexNet", "ResNet-18", "paper AlexNet",
           "paper ResNet-18"});
  t.add_row({"LUT", Table::integer(static_cast<std::int64_t>(ra.luts)),
             Table::integer(static_cast<std::int64_t>(rr.luts)), "343295",
             "596081"});
  t.add_row({"BRAM (Kbit)",
             Table::integer(static_cast<std::int64_t>(ra.bram_kbits())),
             Table::integer(static_cast<std::int64_t>(rr.bram_kbits())),
             "34600", "30854"});
  t.add_row({"FF", Table::integer(static_cast<std::int64_t>(ra.ffs)),
             Table::integer(static_cast<std::int64_t>(rr.ffs)), "664767",
             "1175373"});
  t.add_row({"Run time (ms)", Table::num(1e3 * fa.seconds_per_image, 1),
             Table::num(1e3 * fr.seconds_per_image, 1), "13.7", "16.1"});
  t.add_row({"DFEs", Table::integer(fa.num_dfes),
             Table::integer(fr.num_dfes), "3", "3"});
  t.print(std::cout);

  bench::heading("Depth penalty (§IV-B2)",
                 "Streaming overlaps layers; the GPU executes them "
                 "sequentially.");
  const double dfe_penalty =
      100.0 * (fr.seconds_per_image / fa.seconds_per_image - 1.0);
  const auto ga = estimate_gpu(alex, tesla_p100());
  const auto gr = estimate_gpu(res, tesla_p100());
  const double gpu_penalty =
      100.0 * (gr.seconds_per_image / ga.seconds_per_image - 1.0);
  Table d({"platform", "ResNet-18 vs AlexNet", "paper"});
  d.add_row({"DFE (streaming)", "+" + Table::num(dfe_penalty, 1) + "%",
             "+17.5%"});
  d.add_row({"GPU (layer-sequential)", "+" + Table::num(gpu_penalty, 1) + "%",
             "+42.5%"});
  d.print(std::cout);
  return 0;
}
