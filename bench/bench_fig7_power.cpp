// Figure 7: power consumption of the FPGA- and GPU-based systems (Watt).
//
// Paper anchors: the DFE board draws ~12 W for the VGG-like design
// (Table IVa); DFE power is "at least 15x" below the GPUs for VGG-like
// workloads (§IV-B1); AlexNet's DFE power rises because multiple DFEs are
// needed; ResNet-18 consumes ~5x less power than the GPUs (§I).
#include <iostream>

#include "bench_util.h"
#include "perfmodel/fpga_estimate.h"
#include "perfmodel/gpu_model.h"

int main() {
  using namespace qnn;
  bench::heading("Figure 7 — power consumption (W)",
                 "DFE: utilization-scaled MAX4 board envelope, summed over "
                 "allocated DFEs; GPUs: activity-scaled TDP.");

  Table t({"workload", "DFE W", "DFEs", "P100 W", "GTX1080 W", "P100/DFE",
           "GTX/DFE"});
  for (const auto& w : bench::paper_workloads()) {
    const Pipeline p = expand(w.spec);
    const auto dfe = estimate_fpga(p);
    const double p100 = tesla_p100().inference_power_w();
    const double g1080 = gtx1080().inference_power_w();
    t.add_row({w.label, Table::num(dfe.power_w, 1),
               Table::integer(dfe.num_dfes), Table::num(p100, 1),
               Table::num(g1080, 1), Table::num(p100 / dfe.power_w, 1),
               Table::num(g1080 / dfe.power_w, 1)});
  }
  qnn::bench::emit(t, "fig7_power");
  std::cout << "\npaper: VGG-like DFE ~12 W (Table IVa), at least 15x below "
               "GPU;\nAlexNet DFE power rises with the multi-DFE split; "
               "ResNet-18 ~5x below GPU (§I).\n";
  return 0;
}
