#!/usr/bin/env bash
# One-shot verification gate: warning-clean build (-Werror), full test
# suite, and clang-tidy lint (skipped with a notice when the binary is
# absent). Intended both for CI and as the local pre-push check.
#
# Usage:
#   tools/check.sh                # build + ctest + lint
#   SANITIZE=thread tools/check.sh  # same, built under TSan
#   SANITIZE=address tools/check.sh # same, under ASan+UBSan
#   CHAOS=1 tools/check.sh          # additionally re-run the `chaos`
#                                   # label (seeded fault-injection soak)
#                                   # and the `linkchaos` label (the
#                                   # partitioned MaxRing link soak:
#                                   # mid-run link death, failover,
#                                   # serving through it)
#   PERF=1 tools/check.sh           # additionally run the executor
#                                   # ablation (fail if the ready-queue
#                                   # shallow-chain throughput regresses
#                                   # >10% against BENCH_executor.json), the
#                                   # conv-datapath ablation (fail unless
#                                   # packed+SIMD conv stays >= 3x the
#                                   # scalar re-pack datapath and >= 0.8x
#                                   # the committed BENCH_kernels.json
#                                   # geomean), the
#                                   # mixed-pool serving ablation (fail
#                                   # unless deadline routing beats naive
#                                   # routing >= 1.3x on tight goodput),
#                                   # the autotuned-plan ablation (fail
#                                   # if the tuned plan loses on any
#                                   # throughput metric, replaying
#                                   # BENCH_autotune.json), and the
#                                   # link-fault serving ablation (fail
#                                   # unless a farm with a dead MaxRing
#                                   # link holds >= 0.70x healthy
#                                   # throughput with zero lost requests,
#                                   # replaying BENCH_linkfault.json)
#   TUNE=1 tools/check.sh           # additionally run a bounded qnn_tune
#                                   # --check pass (fail if the tuned plan
#                                   # lost to the default on the deciding
#                                   # metric — a structural invariant)
#   MC=1 tools/check.sh             # additionally run the exhaustive
#                                   # scheduler-protocol model checker
#                                   # (ctest label `mc`: src/mc explores
#                                   # every interleaving of the ReadyHook
#                                   # publish/park protocol; < 60 s)
#
# The default run already includes the QNN-D6xx static gates — the
# compiled-plan consistency lint (PlanLint suite) and the exact token-flow
# deadlock proofs (TokenFlow suite) run inside test_verify/test_plan.
#
# The build directory is build-check[-$SANITIZE], separate from the
# default build/ so a strict -Werror configure never pollutes it.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${SANITIZE:-}"
CHAOS="${CHAOS:-}"
PERF="${PERF:-}"
TUNE="${TUNE:-}"
MC="${MC:-}"
BUILD_DIR="build-check${SANITIZE:+-$SANITIZE}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure (${BUILD_DIR}, QNN_WERROR=ON${SANITIZE:+, QNN_SANITIZE=$SANITIZE}) =="
cmake -B "$BUILD_DIR" -S . -DQNN_WERROR=ON \
  ${SANITIZE:+-DQNN_SANITIZE="$SANITIZE"}

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== test =="
if [ -n "$SANITIZE" ]; then
  # Sanitized runs target the concurrency-sensitive suites; the full
  # matrix runs in the plain configuration below them.
  ctest --test-dir "$BUILD_DIR" -L sanitize --output-on-failure
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure
fi

if [ -n "$MC" ]; then
  echo "== mc (exhaustive scheduler-protocol model checking) =="
  # Explores every interleaving of the ReadyHook publish/park protocol on
  # virtual threads (src/mc) — clean protocol proved, mutated variants
  # (dropped fence / skipped re-step / lost notify) caught as deadlocks.
  # Self-skips under sanitizers (fiber stacks are invisible to their
  # shadow state); the whole label stays under a 60 s budget.
  ctest --test-dir "$BUILD_DIR" -L mc --output-on-failure
fi

if [ -n "$CHAOS" ]; then
  echo "== chaos (seeded fault-injection soak) =="
  ctest --test-dir "$BUILD_DIR" -L chaos --output-on-failure
  echo "== chaos (partitioned link soak: MaxRing faults + failover) =="
  ctest --test-dir "$BUILD_DIR" -L linkchaos --output-on-failure
fi

if [ -n "$PERF" ]; then
  echo "== perf (executor ablation vs recorded baseline) =="
  # The ablation's own exit code enforces the ready-vs-pooled bars
  # (shallow >= 0.95x, deep >= 1.5x); the python step additionally pins
  # the ready-queue shallow-chain throughput to the committed baseline so
  # a scheduler regression that still clears the relative bar is caught.
  QNN_CSV_DIR="$BUILD_DIR" \
    "$BUILD_DIR/bench/bench_micro_kernels" --benchmark_filter=__none__
  python3 - "$BUILD_DIR/BENCH_executor.json" BENCH_executor.json <<'EOF'
import json, sys

def ready_ips(path, chain):
    doc = json.load(open(path))
    for entry in doc["chains"]:
        if entry["chain"] == chain:
            for cfg in entry["configs"]:
                if cfg["label"] == "ready-queue":
                    return cfg["images_per_second"]
    raise SystemExit(f"{path}: no ready-queue entry for chain {chain!r}")

fresh = ready_ips(sys.argv[1], "shallow")
base = ready_ips(sys.argv[2], "shallow")
floor = 0.9 * base
print(f"ready-queue shallow: fresh {fresh:.0f} images/s, "
      f"baseline {base:.0f}, floor {floor:.0f} (90%)")
if fresh < floor:
    raise SystemExit("perf gate: ready-queue shallow-chain throughput "
                     "regressed >10% vs BENCH_executor.json")
print("perf gate: within 10% of recorded baseline")
EOF

  echo "== perf (conv datapath ablation vs recorded baseline) =="
  # Exit code enforces the live bar (packed + SIMD conv throughput >= 3x
  # the per-window scalar re-pack datapath — 2x on hosts without AVX2);
  # the python step holds the COMMITTED BENCH_kernels.json to its own
  # recorded bar and pins the fresh geomean to >= 0.8x the committed one,
  # so a datapath regression that still clears the relative bar is caught.
  QNN_CSV_DIR="$BUILD_DIR" \
    "$BUILD_DIR/bench/bench_micro_kernels" --conv-datapath-only
  python3 - "$BUILD_DIR/BENCH_kernels.json" BENCH_kernels.json <<'EOF'
import json, sys

fresh = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
if not base["pass"]:
    raise SystemExit("perf gate: committed BENCH_kernels.json does not "
                     "meet its recorded bar (pass != true) — re-record it")
floor = 0.8 * base["geomean_simd_vs_scalarpack"]
print(f"conv datapath geomean speedup: fresh "
      f"{fresh['geomean_simd_vs_scalarpack']:.2f}x, baseline "
      f"{base['geomean_simd_vs_scalarpack']:.2f}x, floor {floor:.2f}x")
if fresh["geomean_simd_vs_scalarpack"] < floor:
    raise SystemExit("perf gate: packed+SIMD conv speedup collapsed vs "
                     "BENCH_kernels.json")
print("perf gate: packed conv datapath holds its recorded margin")
EOF

  echo "== perf (mixed-pool serving ablation: routing >= 1.3x naive) =="
  # Exit code enforces the bar; the json lands next to the executor one.
  QNN_CSV_DIR="$BUILD_DIR" \
    "$BUILD_DIR/bench/bench_serving" --backends-only

  echo "== perf (autotuned-plan ablation vs recorded baseline) =="
  # The ablation's exit code enforces the noise-robust bar (the tuned plan
  # loses on NO throughput metric: raw >= 0.90x, capacity >= 0.90x — both
  # arms are compiled live and every repeat interleaves them, so the
  # ratios are immune to machine mood). The python step then checks the
  # COMMITTED artifact carries the headline win (>= 1.15x throughput or
  # <= 0.87x p99) and that the fresh capacity ratio has not collapsed
  # against it.
  QNN_CSV_DIR="$BUILD_DIR" \
    "$BUILD_DIR/bench/bench_serving" --autotune-only
  python3 - "$BUILD_DIR/BENCH_autotune.json" BENCH_autotune.json <<'EOF'
import json, sys

fresh = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
if not base["pass"]:
    raise SystemExit("perf gate: committed BENCH_autotune.json does not "
                     "meet the recorded bar (pass != true) — re-record it")
floor = 0.85 * min(base["throughput_ratio"], 1.0)
print(f"autotune capacity ratio: fresh {fresh['throughput_ratio']:.3f}, "
      f"baseline {base['throughput_ratio']:.3f}, floor {floor:.3f}")
if fresh["throughput_ratio"] < floor:
    raise SystemExit("perf gate: tuned-vs-default serving capacity "
                     "collapsed vs BENCH_autotune.json")
print("perf gate: autotuned plan holds its recorded margin")
EOF

  echo "== perf (link-fault serving ablation vs recorded baseline) =="
  # The ablation's exit code enforces the robustness bar live (a farm with
  # a dead MaxRing link serves >= 0.70x the healthy farm's throughput,
  # zero lost requests, failover observed — both farms run interleaved
  # windows, so the ratio is immune to machine mood). The python step
  # holds the COMMITTED artifact to the same structural bar, so a
  # re-recording can never quietly lower it.
  QNN_CSV_DIR="$BUILD_DIR" \
    "$BUILD_DIR/bench/bench_serving" --link-fault-only
  python3 - "$BUILD_DIR/BENCH_linkfault.json" BENCH_linkfault.json <<'EOF'
import json, sys

fresh = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
for name, doc in (("fresh", fresh), ("committed", base)):
    if not doc["zero_lost"]:
        raise SystemExit(f"perf gate: {name} BENCH_linkfault.json lost "
                         "requests through the link death")
    if not doc["failover_observed"]:
        raise SystemExit(f"perf gate: {name} BENCH_linkfault.json never "
                         "observed the degraded-plan failover")
    if doc["degraded_over_healthy"] < 0.70:
        raise SystemExit(f"perf gate: {name} degraded/healthy throughput "
                         f"{doc['degraded_over_healthy']:.2f} below the "
                         "0.70 bar")
print(f"link-fault ratio: fresh {fresh['degraded_over_healthy']:.2f}, "
      f"committed {base['degraded_over_healthy']:.2f} (bar: >= 0.70, "
      "zero lost, failover observed)")
print("perf gate: serving degrades through link death, never collapses")
EOF
fi

if [ -n "$TUNE" ]; then
  echo "== tune (bounded autotune run; tuned must not lose) =="
  # --check exits 1 if the tuned plan lost to the default on the deciding
  # metric. Structurally impossible (the default is candidate 0 and only a
  # strict improvement replaces it), so this is a tripwire for the
  # autotuner's core invariant. The budget keeps the whole pass < 60 s.
  "$BUILD_DIR/examples/qnn_tune" --budget 45 --check
fi

echo "== lint =="
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --build "$BUILD_DIR" --target lint
else
  echo "lint: clang-tidy not found on PATH; skipped (policy in .clang-tidy)"
fi

echo "== check.sh: all gates passed =="
