#!/usr/bin/env bash
# One-shot verification gate: warning-clean build (-Werror), full test
# suite, and clang-tidy lint (skipped with a notice when the binary is
# absent). Intended both for CI and as the local pre-push check.
#
# Usage:
#   tools/check.sh                # build + ctest + lint
#   SANITIZE=thread tools/check.sh  # same, built under TSan
#   SANITIZE=address tools/check.sh # same, under ASan+UBSan
#   CHAOS=1 tools/check.sh          # additionally re-run the `chaos`
#                                   # label (seeded fault-injection soak)
#
# The build directory is build-check[-$SANITIZE], separate from the
# default build/ so a strict -Werror configure never pollutes it.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${SANITIZE:-}"
CHAOS="${CHAOS:-}"
BUILD_DIR="build-check${SANITIZE:+-$SANITIZE}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure (${BUILD_DIR}, QNN_WERROR=ON${SANITIZE:+, QNN_SANITIZE=$SANITIZE}) =="
cmake -B "$BUILD_DIR" -S . -DQNN_WERROR=ON \
  ${SANITIZE:+-DQNN_SANITIZE="$SANITIZE"}

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== test =="
if [ -n "$SANITIZE" ]; then
  # Sanitized runs target the concurrency-sensitive suites; the full
  # matrix runs in the plain configuration below them.
  ctest --test-dir "$BUILD_DIR" -L sanitize --output-on-failure
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure
fi

if [ -n "$CHAOS" ]; then
  echo "== chaos (seeded fault-injection soak) =="
  ctest --test-dir "$BUILD_DIR" -L chaos --output-on-failure
fi

echo "== lint =="
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --build "$BUILD_DIR" --target lint
else
  echo "lint: clang-tidy not found on PATH; skipped (policy in .clang-tidy)"
fi

echo "== check.sh: all gates passed =="
