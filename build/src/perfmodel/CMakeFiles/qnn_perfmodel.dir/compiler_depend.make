# Empty compiler generated dependencies file for qnn_perfmodel.
# This may be replaced when dependencies are built.
