file(REMOVE_RECURSE
  "CMakeFiles/qnn_perfmodel.dir/fpga_estimate.cpp.o"
  "CMakeFiles/qnn_perfmodel.dir/fpga_estimate.cpp.o.d"
  "CMakeFiles/qnn_perfmodel.dir/gpu_model.cpp.o"
  "CMakeFiles/qnn_perfmodel.dir/gpu_model.cpp.o.d"
  "libqnn_perfmodel.a"
  "libqnn_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
