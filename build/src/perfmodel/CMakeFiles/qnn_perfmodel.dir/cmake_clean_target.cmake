file(REMOVE_RECURSE
  "libqnn_perfmodel.a"
)
