# Empty compiler generated dependencies file for qnn_nn.
# This may be replaced when dependencies are built.
