file(REMOVE_RECURSE
  "libqnn_nn.a"
)
