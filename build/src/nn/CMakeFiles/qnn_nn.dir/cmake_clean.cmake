file(REMOVE_RECURSE
  "CMakeFiles/qnn_nn.dir/params.cpp.o"
  "CMakeFiles/qnn_nn.dir/params.cpp.o.d"
  "CMakeFiles/qnn_nn.dir/pipeline.cpp.o"
  "CMakeFiles/qnn_nn.dir/pipeline.cpp.o.d"
  "CMakeFiles/qnn_nn.dir/reference.cpp.o"
  "CMakeFiles/qnn_nn.dir/reference.cpp.o.d"
  "CMakeFiles/qnn_nn.dir/serialize.cpp.o"
  "CMakeFiles/qnn_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/qnn_nn.dir/summary.cpp.o"
  "CMakeFiles/qnn_nn.dir/summary.cpp.o.d"
  "libqnn_nn.a"
  "libqnn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
