
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/params.cpp" "src/nn/CMakeFiles/qnn_nn.dir/params.cpp.o" "gcc" "src/nn/CMakeFiles/qnn_nn.dir/params.cpp.o.d"
  "/root/repo/src/nn/pipeline.cpp" "src/nn/CMakeFiles/qnn_nn.dir/pipeline.cpp.o" "gcc" "src/nn/CMakeFiles/qnn_nn.dir/pipeline.cpp.o.d"
  "/root/repo/src/nn/reference.cpp" "src/nn/CMakeFiles/qnn_nn.dir/reference.cpp.o" "gcc" "src/nn/CMakeFiles/qnn_nn.dir/reference.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/qnn_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/qnn_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/summary.cpp" "src/nn/CMakeFiles/qnn_nn.dir/summary.cpp.o" "gcc" "src/nn/CMakeFiles/qnn_nn.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/qnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/qnn_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/qnn_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
