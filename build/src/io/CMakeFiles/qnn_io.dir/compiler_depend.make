# Empty compiler generated dependencies file for qnn_io.
# This may be replaced when dependencies are built.
