file(REMOVE_RECURSE
  "CMakeFiles/qnn_io.dir/ppm.cpp.o"
  "CMakeFiles/qnn_io.dir/ppm.cpp.o.d"
  "CMakeFiles/qnn_io.dir/synthetic.cpp.o"
  "CMakeFiles/qnn_io.dir/synthetic.cpp.o.d"
  "CMakeFiles/qnn_io.dir/table.cpp.o"
  "CMakeFiles/qnn_io.dir/table.cpp.o.d"
  "libqnn_io.a"
  "libqnn_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
