file(REMOVE_RECURSE
  "libqnn_io.a"
)
