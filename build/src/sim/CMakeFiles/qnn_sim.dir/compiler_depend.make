# Empty compiler generated dependencies file for qnn_sim.
# This may be replaced when dependencies are built.
