file(REMOVE_RECURSE
  "CMakeFiles/qnn_sim.dir/cycle_model.cpp.o"
  "CMakeFiles/qnn_sim.dir/cycle_model.cpp.o.d"
  "libqnn_sim.a"
  "libqnn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
