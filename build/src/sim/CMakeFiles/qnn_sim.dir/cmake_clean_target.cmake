file(REMOVE_RECURSE
  "libqnn_sim.a"
)
