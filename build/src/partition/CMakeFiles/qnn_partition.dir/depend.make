# Empty dependencies file for qnn_partition.
# This may be replaced when dependencies are built.
