file(REMOVE_RECURSE
  "libqnn_partition.a"
)
