file(REMOVE_RECURSE
  "CMakeFiles/qnn_partition.dir/partitioner.cpp.o"
  "CMakeFiles/qnn_partition.dir/partitioner.cpp.o.d"
  "libqnn_partition.a"
  "libqnn_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
