file(REMOVE_RECURSE
  "libqnn_core.a"
)
