file(REMOVE_RECURSE
  "CMakeFiles/qnn_core.dir/error.cpp.o"
  "CMakeFiles/qnn_core.dir/error.cpp.o.d"
  "libqnn_core.a"
  "libqnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
