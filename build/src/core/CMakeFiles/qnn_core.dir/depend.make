# Empty dependencies file for qnn_core.
# This may be replaced when dependencies are built.
