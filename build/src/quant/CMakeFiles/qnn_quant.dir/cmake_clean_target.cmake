file(REMOVE_RECURSE
  "libqnn_quant.a"
)
