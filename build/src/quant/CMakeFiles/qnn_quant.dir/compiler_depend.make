# Empty compiler generated dependencies file for qnn_quant.
# This may be replaced when dependencies are built.
