file(REMOVE_RECURSE
  "CMakeFiles/qnn_quant.dir/threshold.cpp.o"
  "CMakeFiles/qnn_quant.dir/threshold.cpp.o.d"
  "libqnn_quant.a"
  "libqnn_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
