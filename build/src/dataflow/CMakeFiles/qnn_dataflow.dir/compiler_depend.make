# Empty compiler generated dependencies file for qnn_dataflow.
# This may be replaced when dependencies are built.
