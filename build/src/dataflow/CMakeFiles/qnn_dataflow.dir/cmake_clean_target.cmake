file(REMOVE_RECURSE
  "libqnn_dataflow.a"
)
