file(REMOVE_RECURSE
  "CMakeFiles/qnn_dataflow.dir/engine.cpp.o"
  "CMakeFiles/qnn_dataflow.dir/engine.cpp.o.d"
  "CMakeFiles/qnn_dataflow.dir/kernels.cpp.o"
  "CMakeFiles/qnn_dataflow.dir/kernels.cpp.o.d"
  "libqnn_dataflow.a"
  "libqnn_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
