# Empty dependencies file for qnn_dataflow.
# This may be replaced when dependencies are built.
