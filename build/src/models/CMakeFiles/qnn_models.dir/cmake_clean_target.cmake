file(REMOVE_RECURSE
  "libqnn_models.a"
)
