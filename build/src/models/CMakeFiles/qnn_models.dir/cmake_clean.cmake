file(REMOVE_RECURSE
  "CMakeFiles/qnn_models.dir/zoo.cpp.o"
  "CMakeFiles/qnn_models.dir/zoo.cpp.o.d"
  "libqnn_models.a"
  "libqnn_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
