# Empty compiler generated dependencies file for qnn_models.
# This may be replaced when dependencies are built.
