# Empty dependencies file for qnn_fpga.
# This may be replaced when dependencies are built.
