file(REMOVE_RECURSE
  "libqnn_fpga.a"
)
