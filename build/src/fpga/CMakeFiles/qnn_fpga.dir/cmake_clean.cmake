file(REMOVE_RECURSE
  "CMakeFiles/qnn_fpga.dir/resource_model.cpp.o"
  "CMakeFiles/qnn_fpga.dir/resource_model.cpp.o.d"
  "libqnn_fpga.a"
  "libqnn_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
