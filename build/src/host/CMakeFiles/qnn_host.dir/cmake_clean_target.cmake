file(REMOVE_RECURSE
  "libqnn_host.a"
)
