
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/session.cpp" "src/host/CMakeFiles/qnn_host.dir/session.cpp.o" "gcc" "src/host/CMakeFiles/qnn_host.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/qnn_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/qnn_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/qnn_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qnn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/qnn_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/qnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/qnn_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/qnn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/qnn_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
