file(REMOVE_RECURSE
  "CMakeFiles/qnn_host.dir/session.cpp.o"
  "CMakeFiles/qnn_host.dir/session.cpp.o.d"
  "libqnn_host.a"
  "libqnn_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
