# Empty compiler generated dependencies file for qnn_host.
# This may be replaced when dependencies are built.
