file(REMOVE_RECURSE
  "CMakeFiles/qnn_train.dir/qat.cpp.o"
  "CMakeFiles/qnn_train.dir/qat.cpp.o.d"
  "CMakeFiles/qnn_train.dir/qat_cnn.cpp.o"
  "CMakeFiles/qnn_train.dir/qat_cnn.cpp.o.d"
  "libqnn_train.a"
  "libqnn_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
