# Empty compiler generated dependencies file for qnn_train.
# This may be replaced when dependencies are built.
