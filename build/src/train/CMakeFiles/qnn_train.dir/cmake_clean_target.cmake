file(REMOVE_RECURSE
  "libqnn_train.a"
)
