# Empty compiler generated dependencies file for vgg_cifar_compare.
# This may be replaced when dependencies are built.
