file(REMOVE_RECURSE
  "CMakeFiles/vgg_cifar_compare.dir/vgg_cifar_compare.cpp.o"
  "CMakeFiles/vgg_cifar_compare.dir/vgg_cifar_compare.cpp.o.d"
  "vgg_cifar_compare"
  "vgg_cifar_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgg_cifar_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
