file(REMOVE_RECURSE
  "CMakeFiles/deploy_from_file.dir/deploy_from_file.cpp.o"
  "CMakeFiles/deploy_from_file.dir/deploy_from_file.cpp.o.d"
  "deploy_from_file"
  "deploy_from_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_from_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
