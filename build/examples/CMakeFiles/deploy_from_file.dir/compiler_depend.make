# Empty compiler generated dependencies file for deploy_from_file.
# This may be replaced when dependencies are built.
