file(REMOVE_RECURSE
  "CMakeFiles/resnet18_imagenet.dir/resnet18_imagenet.cpp.o"
  "CMakeFiles/resnet18_imagenet.dir/resnet18_imagenet.cpp.o.d"
  "resnet18_imagenet"
  "resnet18_imagenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet18_imagenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
