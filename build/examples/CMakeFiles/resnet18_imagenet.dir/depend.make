# Empty dependencies file for resnet18_imagenet.
# This may be replaced when dependencies are built.
