# Empty compiler generated dependencies file for alexnet_multidfe.
# This may be replaced when dependencies are built.
