file(REMOVE_RECURSE
  "CMakeFiles/alexnet_multidfe.dir/alexnet_multidfe.cpp.o"
  "CMakeFiles/alexnet_multidfe.dir/alexnet_multidfe.cpp.o.d"
  "alexnet_multidfe"
  "alexnet_multidfe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alexnet_multidfe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
