file(REMOVE_RECURSE
  "CMakeFiles/test_engine_sweep.dir/test_engine_sweep.cpp.o"
  "CMakeFiles/test_engine_sweep.dir/test_engine_sweep.cpp.o.d"
  "test_engine_sweep"
  "test_engine_sweep.pdb"
  "test_engine_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
