file(REMOVE_RECURSE
  "CMakeFiles/test_bitplanes.dir/test_bitplanes.cpp.o"
  "CMakeFiles/test_bitplanes.dir/test_bitplanes.cpp.o.d"
  "test_bitplanes"
  "test_bitplanes.pdb"
  "test_bitplanes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitplanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
