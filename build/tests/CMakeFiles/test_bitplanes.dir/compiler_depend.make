# Empty compiler generated dependencies file for test_bitplanes.
# This may be replaced when dependencies are built.
