file(REMOVE_RECURSE
  "CMakeFiles/test_window_scanner.dir/test_window_scanner.cpp.o"
  "CMakeFiles/test_window_scanner.dir/test_window_scanner.cpp.o.d"
  "test_window_scanner"
  "test_window_scanner.pdb"
  "test_window_scanner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_window_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
