# Empty dependencies file for test_window_scanner.
# This may be replaced when dependencies are built.
