# Empty compiler generated dependencies file for test_width_first_scanner.
# This may be replaced when dependencies are built.
