file(REMOVE_RECURSE
  "CMakeFiles/test_width_first_scanner.dir/test_width_first_scanner.cpp.o"
  "CMakeFiles/test_width_first_scanner.dir/test_width_first_scanner.cpp.o.d"
  "test_width_first_scanner"
  "test_width_first_scanner.pdb"
  "test_width_first_scanner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_width_first_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
