file(REMOVE_RECURSE
  "CMakeFiles/test_sim_multidfe.dir/test_sim_multidfe.cpp.o"
  "CMakeFiles/test_sim_multidfe.dir/test_sim_multidfe.cpp.o.d"
  "test_sim_multidfe"
  "test_sim_multidfe.pdb"
  "test_sim_multidfe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_multidfe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
