# Empty dependencies file for test_sim_multidfe.
# This may be replaced when dependencies are built.
