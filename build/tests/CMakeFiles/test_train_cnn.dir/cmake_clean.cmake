file(REMOVE_RECURSE
  "CMakeFiles/test_train_cnn.dir/test_train_cnn.cpp.o"
  "CMakeFiles/test_train_cnn.dir/test_train_cnn.cpp.o.d"
  "test_train_cnn"
  "test_train_cnn.pdb"
  "test_train_cnn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_train_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
