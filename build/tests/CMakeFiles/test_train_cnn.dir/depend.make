# Empty dependencies file for test_train_cnn.
# This may be replaced when dependencies are built.
