
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_stream.cpp" "tests/CMakeFiles/test_stream.dir/test_stream.cpp.o" "gcc" "tests/CMakeFiles/test_stream.dir/test_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/qnn_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/qnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/qnn_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/qnn_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/qnn_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
