# Empty compiler generated dependencies file for bench_ablation_multidfe.
# This may be replaced when dependencies are built.
