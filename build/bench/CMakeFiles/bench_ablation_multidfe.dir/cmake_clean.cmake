file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multidfe.dir/bench_ablation_multidfe.cpp.o"
  "CMakeFiles/bench_ablation_multidfe.dir/bench_ablation_multidfe.cpp.o.d"
  "bench_ablation_multidfe"
  "bench_ablation_multidfe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multidfe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
