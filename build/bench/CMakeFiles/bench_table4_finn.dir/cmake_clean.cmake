file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_finn.dir/bench_table4_finn.cpp.o"
  "CMakeFiles/bench_table4_finn.dir/bench_table4_finn.cpp.o.d"
  "bench_table4_finn"
  "bench_table4_finn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_finn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
