# Empty dependencies file for bench_table4_finn.
# This may be replaced when dependencies are built.
