# Empty dependencies file for bench_fig7_power.
# This may be replaced when dependencies are built.
