# Empty dependencies file for bench_ablation_actbits.
# This may be replaced when dependencies are built.
