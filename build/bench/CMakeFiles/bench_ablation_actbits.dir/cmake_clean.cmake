file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_actbits.dir/bench_ablation_actbits.cpp.o"
  "CMakeFiles/bench_ablation_actbits.dir/bench_ablation_actbits.cpp.o.d"
  "bench_ablation_actbits"
  "bench_ablation_actbits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_actbits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
