# Empty dependencies file for bench_fig6_resources.
# This may be replaced when dependencies are built.
