#include "host/session.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "io/synthetic.h"
#include "models/zoo.h"
#include "nn/reference.h"
#include "nn/serialize.h"
#include "test_util.h"

namespace qnn {
namespace {

DfeSession tiny_session(std::uint64_t seed = 50) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline p = expand(spec);
  SessionConfig cfg;
  cfg.fast_estimate = true;
  return DfeSession::compile(spec, NetworkParams::random(p, seed), cfg);
}

TEST(Session, CompileInferMatchesReference) {
  DfeSession session = tiny_session();
  const ReferenceExecutor ref(session.pipeline(), session.params());
  Rng rng(51);
  for (int i = 0; i < 3; ++i) {
    const IntTensor img = testutil::random_image(12, 12, 3, rng);
    EXPECT_EQ(session.infer(img), ref.run(img)) << i;
    EXPECT_EQ(session.classify(img),
              ReferenceExecutor::argmax(ref.run(img)));
  }
}

TEST(Session, BatchInference) {
  DfeSession session = tiny_session();
  const auto batch = synthetic_batch(3, 12, 12, 3, 52);
  const auto out = session.infer_batch(batch);
  ASSERT_EQ(out.size(), 3u);
  const ReferenceExecutor ref(session.pipeline(), session.params());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(out[i], ref.run(batch[i]));
  }
}

TEST(Session, EstimateAndPlacementExposed) {
  DfeSession session = tiny_session();
  EXPECT_EQ(session.estimate().num_dfes, 1);
  EXPECT_GT(session.estimate().images_per_second, 60.0);
  EXPECT_EQ(session.placement().num_dfes(), 1);
  EXPECT_EQ(session.spec().name, "tiny_12");
}

TEST(Session, ReportMentionsEverything) {
  DfeSession session = tiny_session();
  const std::string r = session.report();
  EXPECT_NE(r.find("placement: 1 DFE(s)"), std::string::npos);
  EXPECT_NE(r.find("timing:"), std::string::npos);
  EXPECT_NE(r.find("power:"), std::string::npos);
  EXPECT_NE(r.find("conv_0"), std::string::npos);
}

TEST(Session, LoadFromDiskMatchesCompiled) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline p = expand(spec);
  NetworkParams params = NetworkParams::random(p, 53);
  const std::string path = "/tmp/qnn_session.qnn";
  save_network(path, spec, params);
  SessionConfig cfg;
  cfg.fast_estimate = true;
  DfeSession compiled = DfeSession::compile(spec, std::move(params), cfg);
  DfeSession loaded = DfeSession::load(path, cfg);
  std::remove(path.c_str());
  Rng rng(54);
  const IntTensor img = testutil::random_image(12, 12, 3, rng);
  EXPECT_EQ(loaded.infer(img), compiled.infer(img));
}

TEST(Session, MultiDfePlacementForResNet) {
  const NetworkSpec spec = models::resnet18(224, 1000, 2);
  const Pipeline p = expand(spec);
  SessionConfig cfg;
  cfg.fast_estimate = true;  // skip the cycle sim; analytic is enough here
  DfeSession session =
      DfeSession::compile(spec, NetworkParams::random(p, 55), cfg);
  EXPECT_EQ(session.estimate().num_dfes, 3);
  EXPECT_EQ(static_cast<int>(session.placement().cuts.size()), 2);
}

TEST(Session, SessionIsMovable) {
  DfeSession a = tiny_session();
  Rng rng(56);
  const IntTensor img = testutil::random_image(12, 12, 3, rng);
  const IntTensor before = a.infer(img);
  DfeSession b = std::move(a);
  EXPECT_EQ(b.infer(img), before);  // engine references stay valid
}

// Replica pools (serve/server.h) compile N sessions from one
// NetworkSpec/NetworkParams pair: compile() must not retain mutable state
// shared between sessions, so independently constructed replicas agree
// with each other and can run concurrently.
TEST(Session, ReplicasFromOneNetworkAreIndependent) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline p = expand(spec);
  const NetworkParams params = NetworkParams::random(p, 57);
  SessionConfig cfg;
  cfg.fast_estimate = true;
  DfeSession a = DfeSession::compile(spec, params, cfg);
  DfeSession b = DfeSession::compile(spec, params, cfg);
  const ReferenceExecutor ref(p, params);
  const auto batch = synthetic_batch(4, 12, 12, 3, 58);
  std::vector<IntTensor> out_a;
  std::vector<IntTensor> out_b;
  std::thread ta([&] { out_a = a.infer_batch(batch); });
  std::thread tb([&] { out_b = b.infer_batch(batch); });
  ta.join();
  tb.join();
  ASSERT_EQ(out_a.size(), 4u);
  ASSERT_EQ(out_b.size(), 4u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(out_a[i], ref.run(batch[i]));
    EXPECT_EQ(out_b[i], ref.run(batch[i]));
  }
}

TEST(Session, CompileRejectsMismatchedParams) {
  SessionConfig cfg;
  cfg.fast_estimate = true;
  EXPECT_THROW((void)DfeSession::compile(models::tiny(12, 4, 2),
                                         NetworkParams{}, cfg),
               Error);
}

}  // namespace
}  // namespace qnn
