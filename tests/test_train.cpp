#include "train/qat.h"

#include <gtest/gtest.h>

#include "dataflow/engine.h"
#include "nn/reference.h"

namespace qnn {
namespace {

LabeledDataset easy_task() { return make_cluster_task(3, 8, 80, 12.0, 21); }

TEST(Qat, LossDecreasesOverTraining) {
  const auto data = easy_task();
  QatConfig cfg;
  cfg.epochs = 1;
  cfg.seed = 5;
  QatMlp mlp(data.dim, data.classes, cfg);
  const double first = mlp.train_epoch(data);
  double last = first;
  for (int e = 0; e < 20; ++e) last = mlp.train_epoch(data);
  EXPECT_LT(last, first * 0.5);
}

TEST(Qat, LearnsEasyTaskWellAboveChance) {
  const auto all = easy_task();
  const auto [train, test] = split_dataset(all, 0.75);
  QatConfig cfg;
  cfg.epochs = 40;
  cfg.seed = 6;
  QatMlp mlp(train.dim, train.classes, cfg);
  mlp.fit(train);
  EXPECT_GT(mlp.evaluate(test), 0.85);  // chance is 1/3
}

TEST(Qat, ExportedModelMatchesTrainingForward) {
  // The whole point of the QAT forward semantics: after threshold folding,
  // the integer inference stack classifies exactly like the trained model.
  const auto all = easy_task();
  const auto [train, test] = split_dataset(all, 0.75);
  QatConfig cfg;
  cfg.epochs = 30;
  cfg.seed = 7;
  const QatResult r = train_and_export(train, test, cfg);
  EXPECT_NEAR(r.exported_accuracy, r.train_accuracy, 0.02);
  EXPECT_GT(r.exported_accuracy, 0.8);
}

TEST(Qat, ExportedModelRunsOnStreamingEngine) {
  const auto all = easy_task();
  const auto [train, test] = split_dataset(all, 0.75);
  QatConfig cfg;
  cfg.epochs = 25;
  cfg.seed = 8;
  QatMlp mlp(train.dim, train.classes, cfg);
  mlp.fit(train);
  const auto [pipeline, params] = mlp.export_network();
  const ReferenceExecutor ref(pipeline, params);
  StreamEngine engine(pipeline, params);
  for (int i = 0; i < 10; ++i) {
    const IntTensor& img = test.images[static_cast<std::size_t>(i)];
    EXPECT_EQ(engine.run_one(img), ref.run(img)) << "sample " << i;
  }
}

TEST(Qat, MoreActivationBitsNeverMuchWorse) {
  // The ordering behind the paper's 41.8% -> 51.03% AlexNet improvement:
  // on a task hard enough to separate them, 2-bit activations beat 1-bit.
  const auto all = make_cluster_task(8, 12, 150, 45.0, 7);
  const auto [train, test] = split_dataset(all, 0.7);
  QatConfig one;
  one.act_bits = 1;
  one.epochs = 50;
  one.seed = 11;
  QatConfig two = one;
  two.act_bits = 2;
  const double acc1 = train_and_export(train, test, one).exported_accuracy;
  const double acc2 = train_and_export(train, test, two).exported_accuracy;
  EXPECT_GT(acc2, acc1 + 0.05);
}

TEST(Qat, DeterministicGivenSeed) {
  const auto all = easy_task();
  const auto [train, test] = split_dataset(all, 0.75);
  QatConfig cfg;
  cfg.epochs = 10;
  cfg.seed = 12;
  const QatResult a = train_and_export(train, test, cfg);
  const QatResult b = train_and_export(train, test, cfg);
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
  EXPECT_DOUBLE_EQ(a.exported_accuracy, b.exported_accuracy);
}

TEST(Qat, RejectsBadConfigs) {
  EXPECT_THROW(QatMlp(0, 3, QatConfig{}), Error);
  EXPECT_THROW(QatMlp(8, 1, QatConfig{}), Error);
  QatConfig bad;
  bad.act_bits = 0;
  EXPECT_THROW(QatMlp(8, 3, bad), Error);
  QatConfig bad_hidden;
  bad_hidden.hidden = {16, 0};
  EXPECT_THROW(QatMlp(8, 3, bad_hidden), Error);
}

TEST(Qat, MismatchedDatasetDimensionThrows) {
  QatMlp mlp(8, 3, QatConfig{});
  const auto wrong = make_cluster_task(3, 5, 10, 5.0, 1);
  EXPECT_THROW((void)mlp.train_epoch(wrong), Error);
  EXPECT_THROW((void)mlp.evaluate(wrong), Error);
}

}  // namespace
}  // namespace qnn
