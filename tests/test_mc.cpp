// Model-checker suite (`mc` label): the scheduler/stream protocol is
// explored exhaustively within stated preemption bounds, and the checker
// itself is validated by broken protocol variants it MUST catch.
//
// The whole suite is budgeted to stay well under a minute (MC=1
// tools/check.sh); the deeper sweeps live in the qnn_mc CLI.
#include <gtest/gtest.h>

#include "mc/harness.h"

namespace qnn::mc {
namespace {

// The fiber scheduler hand-switches stacks, which the sanitizers' shadow
// state does not follow; the `mc` label is disjoint from `sanitize`, and
// sanitized builds skip these suites explicitly.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define QNN_MC_SKIP() GTEST_SKIP() << "model checker needs an unsanitized build"
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define QNN_MC_SKIP() GTEST_SKIP() << "model checker needs an unsanitized build"
#else
#define QNN_MC_SKIP() (void)0
#endif
#else
#define QNN_MC_SKIP() (void)0
#endif

Scenario base() {
  Scenario s;
  s.pipes = 1;
  s.workers = 2;
  s.values = 2;
  s.capacity = 1;
  s.budget.preemption_bound = 2;
  s.budget.max_executions = 500000;
  return s;
}

TEST(ModelChecker, CleanProtocolOnePipeExhaustive) {
  QNN_MC_SKIP();
  const Scenario s = base();
  const Model::Result r = check_protocol(s);
  ASSERT_TRUE(r.ok()) << r.violations[0].what << "\n" << r.violations[0].trace;
  // The proof claim requires the tree to be explored to the end, not cut
  // by the execution budget.
  EXPECT_TRUE(r.stats.complete);
  EXPECT_FALSE(r.stats.budget_exhausted);
  EXPECT_GT(r.stats.executions, 1000u);
}

TEST(ModelChecker, CleanProtocolTwoByTwoExhaustive) {
  QNN_MC_SKIP();
  Scenario s = base();
  s.pipes = 2;  // 2 producers x 2 consumers — the acceptance bound
  const Model::Result r = check_protocol(s);
  ASSERT_TRUE(r.ok()) << r.violations[0].what << "\n" << r.violations[0].trace;
  EXPECT_TRUE(r.stats.complete);
  EXPECT_GT(r.stats.executions, 10000u);
}

TEST(ModelChecker, CleanProtocolDeeperRingStaysClean) {
  QNN_MC_SKIP();
  Scenario s = base();
  s.capacity = 2;
  s.values = 3;
  s.budget.preemption_bound = 2;
  const Model::Result r = check_protocol(s);
  ASSERT_TRUE(r.ok()) << r.violations[0].what << "\n" << r.violations[0].trace;
  EXPECT_TRUE(r.stats.complete);
}

TEST(ModelChecker, MutationTemplateMatchesProduction) {
  QNN_MC_SKIP();
  // check_protocol_mutated<NoProtocolMutations> IS the production
  // protocol; pin the equivalence so the mutation plumbing cannot drift.
  const Scenario s = base();
  const Model::Result a = check_protocol(s);
  const Model::Result b = check_protocol_mutated<NoProtocolMutations>(s);
  EXPECT_EQ(a.stats.executions, b.stats.executions);
  EXPECT_TRUE(b.ok());
}

// Each mutation removes one load-bearing ingredient of the lost-wakeup
// closure (ready_protocol.h); the checker must catch every one, which is
// the evidence that "0 violations" on the real protocol means something.

TEST(ModelChecker, CatchesRemovedWakeFence) {
  QNN_MC_SKIP();
  Scenario s = base();
  s.budget.preemption_bound = 3;
  const Model::Result r = check_protocol_mutated<MutSkipWakeFence>(s);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations[0].what.find("deadlock"), std::string::npos)
      << r.violations[0].what;
  EXPECT_FALSE(r.violations[0].trace.empty());
}

TEST(ModelChecker, CatchesSkippedRestep) {
  QNN_MC_SKIP();
  Scenario s = base();
  s.budget.preemption_bound = 3;
  const Model::Result r = check_protocol_mutated<MutSkipRestep>(s);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations[0].what.find("deadlock"), std::string::npos)
      << r.violations[0].what;
}

TEST(ModelChecker, CatchesDroppedNotify) {
  QNN_MC_SKIP();
  Scenario s = base();
  s.budget.preemption_bound = 3;
  const Model::Result r = check_protocol_mutated<MutDropNotify>(s);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations[0].what.find("deadlock"), std::string::npos)
      << r.violations[0].what;
}

TEST(ModelChecker, BudgetExhaustionIsReportedNotSilent) {
  QNN_MC_SKIP();
  Scenario s = base();
  s.budget.max_executions = 50;  // far below the tree size
  const Model::Result r = check_protocol(s);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.stats.budget_exhausted);
  EXPECT_FALSE(r.stats.complete);
  Report rep;
  to_report(s, r, rep);
  EXPECT_TRUE(rep.has(diag::kProtoBudget));
  EXPECT_EQ(rep.errors(), 0);
}

TEST(ModelChecker, ReportMapsVerdictsToD6xxCodes) {
  QNN_MC_SKIP();
  {  // clean run -> D605 proof note, no errors
    const Scenario s = base();
    Report rep;
    to_report(s, check_protocol(s), rep);
    EXPECT_TRUE(rep.ok());
    EXPECT_TRUE(rep.has(diag::kProtoExplored));
  }
  {  // lost wakeup -> D601 error carrying the interleaving trace
    Scenario s = base();
    s.budget.preemption_bound = 3;
    Report rep;
    to_report(s, check_protocol_mutated<MutSkipRestep>(s), rep);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(rep.has(diag::kProtoDeadlock));
  }
}

TEST(ModelChecker, SleepSetPruningPreservesVerdicts) {
  QNN_MC_SKIP();
  // Reduction must change cost, never verdicts: the mutation is caught
  // with pruning disabled too, and the clean protocol stays clean.
  Scenario s = base();
  s.budget.sleep_sets = false;
  s.budget.preemption_bound = 2;
  const Model::Result clean = check_protocol(s);
  EXPECT_TRUE(clean.ok());
  EXPECT_TRUE(clean.stats.complete);
  s.budget.preemption_bound = 3;
  const Model::Result broken = check_protocol_mutated<MutSkipRestep>(s);
  EXPECT_FALSE(broken.ok());
}

}  // namespace
}  // namespace qnn::mc
