#include "core/bitplanes.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"

namespace qnn {
namespace {

TEST(BitPlaneWindow, SetGetRoundTrip) {
  BitPlaneWindow w(10, 2);
  for (std::int64_t i = 0; i < 10; ++i) {
    w.set(i, static_cast<std::uint32_t>(i % 4));
  }
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(w.get(i), static_cast<std::uint32_t>(i % 4));
  }
}

TEST(BitPlaneWindow, FillFromSpan) {
  BitPlaneWindow w(5, 3);
  const std::vector<std::int32_t> codes{0, 7, 3, 5, 1};
  w.fill(codes);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(w.get(static_cast<std::int64_t>(i)),
              static_cast<std::uint32_t>(codes[i]));
  }
}

/// Property: the packed bit-plane dot equals the scalar signed dot for
/// random weights and codes, across bit widths (the 2-bit activations of
/// the paper and the 8-bit first layer alike).
class BitPlaneDotProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitPlaneDotProperty, MatchesScalarReference) {
  const int bits = GetParam();
  Rng rng(1234 + static_cast<std::uint64_t>(bits));
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.next_below(200));
    BitVector w(n);
    std::vector<std::int8_t> w_pm1(static_cast<std::size_t>(n));
    std::vector<std::int32_t> codes(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      const bool bit = rng.next_bool();
      w.set(i, bit);
      w_pm1[static_cast<std::size_t>(i)] = bit ? 1 : -1;
      codes[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
          rng.next_below(std::uint64_t{1} << bits));
    }
    BitPlaneWindow win(n, bits);
    win.fill(codes);
    EXPECT_EQ(win.dot(w), reference_pm1_dot(w_pm1, codes))
        << "bits=" << bits << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitPlaneDotProperty,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(BitPlaneWindow, AllZeroCodesGiveZeroDot) {
  BitPlaneWindow w(64, 2);
  BitVector weights(64);
  for (std::int64_t i = 0; i < 64; ++i) weights.set(i, i % 2 == 0);
  EXPECT_EQ(w.dot(weights), 0);  // code 0 contributes nothing (pad rule)
}

TEST(BitPlaneWindow, MaxCodesAllPlusWeights) {
  const std::int64_t n = 30;
  BitPlaneWindow w(n, 2);
  BitVector weights(n);
  for (std::int64_t i = 0; i < n; ++i) {
    w.set(i, 3);
    weights.set(i, true);
  }
  EXPECT_EQ(w.dot(weights), 3 * n);
}

TEST(BitPlaneWindow, ClearResetsToZero) {
  BitPlaneWindow w(16, 2);
  for (std::int64_t i = 0; i < 16; ++i) w.set(i, 3);
  w.clear();
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(w.get(i), 0u);
}

TEST(BitPlaneWindow, CachedPlaneCountsRefreshAfterSet) {
  // dot() caches plane popcounts per fill; a point set() must invalidate
  // the cache, and the next dot must see the updated planes.
  const std::int64_t n = 70;  // straddles a word boundary
  BitPlaneWindow w(n, 2);
  BitVector weights(n);
  std::vector<std::int8_t> w_pm1(static_cast<std::size_t>(n));
  std::vector<std::int32_t> codes(static_cast<std::size_t>(n));
  Rng rng(99);
  for (std::int64_t i = 0; i < n; ++i) {
    const bool bit = rng.next_bool();
    weights.set(i, bit);
    w_pm1[static_cast<std::size_t>(i)] = bit ? 1 : -1;
    codes[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(rng.next_below(4));
  }
  w.fill(codes);
  ASSERT_EQ(w.dot(weights), reference_pm1_dot(w_pm1, codes));
  // Mutate a value after the cached dot and re-check.
  codes[65] = (codes[65] + 1) % 4;
  w.set(65, static_cast<std::uint32_t>(codes[65]));
  EXPECT_EQ(w.dot(weights), reference_pm1_dot(w_pm1, codes));
  // clear() re-validates the cache at zero.
  w.clear();
  const std::vector<std::int32_t> zeros(static_cast<std::size_t>(n), 0);
  EXPECT_EQ(w.dot(weights), reference_pm1_dot(w_pm1, zeros));
}

}  // namespace
}  // namespace qnn
