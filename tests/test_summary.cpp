#include "nn/summary.h"

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace qnn {
namespace {

TEST(Summary, ContainsEveryKernelAndTotals) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const std::string s = summarize(p);
  for (const auto& n : p.nodes) {
    EXPECT_NE(s.find(n.name), std::string::npos) << n.name;
  }
  EXPECT_NE(s.find("total: " + std::to_string(p.size()) + " kernels"),
            std::string::npos);
  EXPECT_NE(s.find(std::to_string(p.total_weight_bits())),
            std::string::npos);
}

TEST(Summary, ShowsSkipEdges) {
  const Pipeline p = expand(models::resnet18(64, 100, 2));
  const std::string s = summarize(p);
  // Every Add row names its skip producer.
  for (const auto& n : p.nodes) {
    if (n.kind != NodeKind::Add) continue;
    EXPECT_NE(s.find(p.node(n.skip_from).name), std::string::npos);
  }
}

TEST(Summary, DigestOneLiner) {
  const Pipeline p = expand(models::vgg_like(32, 10, 2));
  const std::string d = digest(p);
  EXPECT_NE(d.find("vgg_like_32"), std::string::npos);
  EXPECT_NE(d.find("32x32x3"), std::string::npos);
  EXPECT_NE(d.find("1x1x10"), std::string::npos);
  EXPECT_EQ(d.find('\n'), std::string::npos);
}

TEST(Summary, FinnCnvMatchesPublishedTopology) {
  const Pipeline p = expand(models::finn_cnv(10, 2));
  // Unpadded convs: 32 -> 30 -> 28 -> pool 14 -> 12 -> 10 -> pool 5 ->
  // 3 -> 1, then dense 512/512/10.
  EXPECT_EQ(p.node(0).out, (Shape{30, 30, 64}));
  EXPECT_EQ(p.node(0).pad, 0);
  Shape last_conv{};
  for (const auto& n : p.nodes) {
    if (n.kind == NodeKind::Conv && n.out.h > 1) last_conv = n.out;
  }
  EXPECT_EQ(last_conv.c, 256);
  EXPECT_EQ(p.output_shape(), (Shape{1, 1, 10}));
}

}  // namespace
}  // namespace qnn
