#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "io/ppm.h"
#include "io/synthetic.h"
#include "io/table.h"

namespace qnn {
namespace {

TEST(Synthetic, ImagesHave8BitRange) {
  Rng rng(1);
  const IntTensor img = synthetic_image(8, 9, 3, rng);
  EXPECT_EQ(img.shape(), (Shape{8, 9, 3}));
  for (std::int64_t i = 0; i < img.size(); ++i) {
    EXPECT_GE(img[i], 0);
    EXPECT_LE(img[i], 255);
  }
}

TEST(Synthetic, BatchIsDeterministicPerSeed) {
  const auto a = synthetic_batch(3, 4, 4, 3, 42);
  const auto b = synthetic_batch(3, 4, 4, 3, 42);
  const auto c = synthetic_batch(3, 4, 4, 3, 43);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[2], b[2]);
  EXPECT_NE(a[0], c[0]);
}

TEST(Synthetic, PatternImagesDifferAcrossClasses) {
  Rng rng(2);
  const IntTensor a = synthetic_pattern_image(16, 16, 1, 0, rng);
  const IntTensor b = synthetic_pattern_image(16, 16, 1, 3, rng);
  std::int64_t diff = 0;
  for (std::int64_t i = 0; i < a.size(); ++i) diff += a[i] != b[i];
  EXPECT_GT(diff, a.size() / 4);
}

TEST(Synthetic, ClusterTaskShapesAndLabels) {
  const auto ds = make_cluster_task(4, 8, 25, 10.0, 3);
  EXPECT_EQ(ds.size(), 100);
  EXPECT_EQ(ds.classes, 4);
  EXPECT_EQ(ds.dim, 8);
  int per_class[4] = {};
  for (int i = 0; i < ds.size(); ++i) {
    const int label = ds.labels[static_cast<std::size_t>(i)];
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 4);
    ++per_class[label];
    EXPECT_EQ(ds.images[static_cast<std::size_t>(i)].shape(),
              (Shape{1, 1, 8}));
    // Float features and integer images agree.
    for (int d = 0; d < 8; ++d) {
      EXPECT_EQ(static_cast<std::int32_t>(
                    ds.features[static_cast<std::size_t>(i)]
                               [static_cast<std::size_t>(d)]),
                ds.images[static_cast<std::size_t>(i)].at(0, 0, d));
    }
  }
  for (int k = 0; k < 4; ++k) EXPECT_EQ(per_class[k], 25);
}

TEST(Synthetic, ClustersAreLearnableStructure) {
  // Nearest-centroid on the raw features must beat chance by a wide
  // margin, otherwise the QAT ablation would measure noise.
  const auto ds = make_cluster_task(4, 8, 50, 12.0, 9);
  std::vector<std::vector<double>> centroid(
      4, std::vector<double>(8, 0.0));
  std::vector<int> count(4, 0);
  for (int i = 0; i < ds.size(); ++i) {
    const int k = ds.labels[static_cast<std::size_t>(i)];
    ++count[static_cast<std::size_t>(k)];
    for (int d = 0; d < 8; ++d) {
      centroid[static_cast<std::size_t>(k)][static_cast<std::size_t>(d)] +=
          ds.features[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)];
    }
  }
  for (int k = 0; k < 4; ++k) {
    for (auto& v : centroid[static_cast<std::size_t>(k)]) {
      v /= count[static_cast<std::size_t>(k)];
    }
  }
  int correct = 0;
  for (int i = 0; i < ds.size(); ++i) {
    double best = 1e300;
    int arg = 0;
    for (int k = 0; k < 4; ++k) {
      double dist = 0.0;
      for (int d = 0; d < 8; ++d) {
        const double delta =
            ds.features[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(d)] -
            centroid[static_cast<std::size_t>(k)][static_cast<std::size_t>(d)];
        dist += delta * delta;
      }
      if (dist < best) {
        best = dist;
        arg = k;
      }
    }
    correct += arg == ds.labels[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(static_cast<double>(correct) / ds.size(), 0.9);
}

TEST(Synthetic, SplitPreservesSamplesAndDisjointness) {
  const auto ds = make_cluster_task(3, 4, 30, 8.0, 5);
  const auto [train, test] = split_dataset(ds, 0.7);
  EXPECT_EQ(train.size() + test.size(), ds.size());
  EXPECT_EQ(train.size(), 63);
  EXPECT_EQ(train.classes, 3);
  EXPECT_EQ(test.dim, 4);
  EXPECT_THROW((void)split_dataset(ds, 0.0), Error);
  EXPECT_THROW((void)split_dataset(ds, 1.0), Error);
}

TEST(Ppm, RoundTrip) {
  Rng rng(4);
  const IntTensor img = synthetic_image(5, 7, 3, rng);
  const std::string path = "/tmp/qnn_test_roundtrip.ppm";
  write_ppm(path, img);
  const IntTensor back = read_ppm(path);
  EXPECT_EQ(back, img);
  std::remove(path.c_str());
}

TEST(Ppm, RejectsNonRgb) {
  EXPECT_THROW(write_ppm("/tmp/x.ppm", IntTensor(Shape{2, 2, 1})), Error);
}

TEST(Ppm, RejectsMissingFile) {
  EXPECT_THROW((void)read_ppm("/tmp/definitely_missing_qnn.ppm"), Error);
}

TEST(TableTest, AlignedAndCsvRendering) {
  Table t({"net", "ms", "fps"});
  t.add_row({"vgg", Table::num(0.635, 3), Table::integer(1574)});
  t.add_row({"resnet18", Table::num(15.8, 1), Table::integer(63)});
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cell(0, 1), "0.635");

  std::ostringstream pretty;
  t.print(pretty);
  EXPECT_NE(pretty.str().find("resnet18"), std::string::npos);
  EXPECT_NE(pretty.str().find("---"), std::string::npos);

  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("net,ms,fps"), std::string::npos);
  EXPECT_NE(csv.str().find("vgg,0.635,1574"), std::string::npos);
}

TEST(TableTest, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableTest, SaveCsv) {
  Table t({"x"});
  t.add_row({"1"});
  const std::string path = "/tmp/qnn_test_table.csv";
  EXPECT_TRUE(t.save_csv(path));
  std::remove(path.c_str());
  EXPECT_FALSE(t.save_csv("/nonexistent_dir_qnn/file.csv"));
}

}  // namespace
}  // namespace qnn
