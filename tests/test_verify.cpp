// Static analyzer test suite: every malformed-graph class the analyzer
// must reject, each asserted by its stable QNN-Dxxx code, plus the sweep
// proving that every zoo model verifies clean and that the FIFO plan the
// analyzer reasons about is exactly the one the engine wires.
#include <gtest/gtest.h>

#include <algorithm>

#include "dataflow/engine.h"
#include "host/session.h"
#include "models/zoo.h"
#include "nn/reference.h"
#include "partition/partitioner.h"
#include "plan/compiled_plan.h"
#include "test_util.h"
#include "verify/graph_check.h"
#include "verify/plan_check.h"
#include "verify/token_flow.h"

namespace qnn {
namespace {

/// True when the report carries `code` at error severity.
bool has_error(const Report& report, const char* code) {
  return std::any_of(report.diagnostics().begin(),
                     report.diagnostics().end(), [&](const Diagnostic& d) {
                       return d.code == code &&
                              d.severity == Severity::kError;
                     });
}

struct Fixture {
  Pipeline pipeline;
  NetworkParams params;

  explicit Fixture(std::uint64_t seed = 7)
      : pipeline(expand(models::tiny(12, 4, 2))),
        params(NetworkParams::random(pipeline, seed)) {}

  [[nodiscard]] int first_node(NodeKind kind) const {
    for (int i = 0; i < pipeline.size(); ++i) {
      if (pipeline.node(i).kind == kind) return i;
    }
    ADD_FAILURE() << "fixture pipeline has no node of the requested kind";
    return -1;
  }
  Node& node(int i) { return pipeline.nodes[static_cast<std::size_t>(i)]; }

  [[nodiscard]] Report verify(EngineOptions options = {}) const {
    return verify_graph(pipeline, &params, options);
  }
};

// ---------------------------------------------------------------- clean

TEST(Verify, TinyVerifiesCleanWithProofNotes) {
  const Fixture f;
  const Report r = f.verify();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.errors(), 0);
  EXPECT_EQ(r.warnings(), 0) << r.str();
  // The skip edges' deadlock proofs are recorded, not just implied.
  EXPECT_TRUE(r.has(diag::kSkipCapacity));
}

TEST(Verify, ZooModelsVerifyCleanUnderBothExecutors) {
  const NetworkSpec specs[] = {
      models::tiny(12, 4, 2),          models::vgg_like(16, 10, 2),
      models::finn_cnv(10, 2),         models::resnet18(32, 10, 2),
      models::resnet18_noskip(32, 10, 2), models::resnet34(32, 10, 2),
      models::alexnet(224, 10, 2),
  };
  for (const NetworkSpec& spec : specs) {
    const Pipeline p = expand(spec);
    const NetworkParams params = NetworkParams::random(p, 11);
    for (const ExecutorKind executor :
         {ExecutorKind::kThreadPerKernel, ExecutorKind::kPooled}) {
      EngineOptions options;
      options.executor = executor;
      const Report r = verify_graph(p, &params, options);
      EXPECT_TRUE(r.ok()) << spec.name << ":\n" << r.str();
      EXPECT_EQ(r.warnings(), 0) << spec.name << ":\n" << r.str();
    }
  }
}

TEST(Verify, OptimalPartitionIsFeasible) {
  const Fixture f;
  const PartitionConfig config;
  const PartitionResult placement =
      partition_optimal(f.pipeline, config);
  const Report r =
      verify_all(f.pipeline, &f.params, {}, &placement, config);
  EXPECT_TRUE(r.ok()) << r.str();
  EXPECT_EQ(r.warnings(), 0) << r.str();
}

// ------------------------------------------------------- (a) structure

TEST(Verify, EmptyPipelineIsAnError) {
  const Pipeline p;
  const Report r = verify_graph(p, nullptr);
  EXPECT_TRUE(has_error(r, diag::kBadEdge));
}

TEST(Verify, EdgeBreakingTopologicalOrderIsD001) {
  Fixture f;
  f.node(2).main_from = 5;  // forward reference = cycle
  EXPECT_TRUE(has_error(f.verify(), diag::kBadEdge));
}

TEST(Verify, ForkWithDeadBranchIsD002AndD003) {
  Fixture f;
  // Append a 1x1 pool reading a mid-chain node: the old output node
  // becomes a dead end and the tail of the chain a dead subgraph.
  const int tap = f.first_node(NodeKind::BnAct);
  Node leech;
  leech.kind = NodeKind::MaxPool;
  leech.name = "leech";
  leech.main_from = tap;
  leech.in = f.node(tap).out;
  leech.out = f.node(tap).out;
  leech.in_bits = f.node(tap).out_bits;
  leech.out_bits = f.node(tap).out_bits;
  leech.k = 1;
  leech.stride = 1;
  leech.pad = 0;
  f.pipeline.nodes.push_back(leech);
  const Report r = f.verify();
  EXPECT_TRUE(has_error(r, diag::kDeadEnd));
  EXPECT_TRUE(has_error(r, diag::kUnreachable));
}

TEST(Verify, AddWithoutSkipEdgeIsD004) {
  Fixture f;
  f.node(f.first_node(NodeKind::Add)).skip_from = -1;
  EXPECT_TRUE(has_error(f.verify(), diag::kMissingSkip));
}

TEST(Verify, SkipEdgeOnNonAddNodeIsD005) {
  Fixture f;
  f.node(f.first_node(NodeKind::BnAct)).skip_from = 0;
  EXPECT_TRUE(has_error(f.verify(), diag::kStraySkip));
}

TEST(Verify, SameProducerOnBothAddPortsIsD006Warning) {
  Fixture f;
  Node& add = f.node(f.first_node(NodeKind::Add));
  add.skip_from = add.main_from;
  const Report r = f.verify();
  EXPECT_TRUE(r.has(diag::kDegenerateFork));
  EXPECT_TRUE(r.ok()) << r.str();  // degenerate, but it runs
}

// ---------------------------------------------- (b) shapes / bit widths

TEST(Verify, ShapeMismatchOnEdgeIsD101) {
  Fixture f;
  f.node(f.first_node(NodeKind::Conv)).in.c += 1;
  EXPECT_TRUE(has_error(f.verify(), diag::kShapeMismatch));
}

TEST(Verify, BadWindowGeometryIsD102) {
  Fixture f;
  f.node(f.first_node(NodeKind::Conv)).stride = 0;
  EXPECT_TRUE(has_error(f.verify(), diag::kBadWindow));
}

TEST(Verify, StreamWidthNotMatchingProducerIsD103) {
  Fixture f;
  const int conv = f.first_node(NodeKind::Conv);
  f.node(conv).in_bits += 1;  // producer still streams the old width
  EXPECT_TRUE(has_error(f.verify(), diag::kBitsMismatch));
}

TEST(Verify, OutputWidthBelowValueRangeIsD104) {
  Fixture f;
  // A conv's pre-activation sums need preact_bits(k*k*I, in_bits);
  // declaring 2 bits truncates them (and poisons every downstream plane).
  const int conv = f.first_node(NodeKind::Conv);
  f.node(conv).out_bits = 2;
  EXPECT_TRUE(has_error(f.verify(), diag::kBitsOverflow));
}

TEST(Verify, StreamWidthOutsideSupportedRangeIsD105) {
  Fixture f;
  f.pipeline.nodes.back().out_bits = 40;  // Stream supports [1, 32]
  EXPECT_TRUE(has_error(f.verify(), diag::kBitsRange));
}

// ------------------------------------------------- (b) parameter banks

TEST(Verify, MissingConvBankIsD201) {
  Fixture f;
  f.params.convs.pop_back();
  EXPECT_TRUE(has_error(f.verify(), diag::kParamBank));
}

TEST(Verify, SwappedWeightCachesAreD202) {
  Fixture f;
  // tiny's first and second convolutions have different filter shapes, so
  // swapping their banks misaligns both kernels' weight caches.
  std::size_t a = 0;
  std::size_t b = 1;
  ASSERT_GE(f.params.convs.size(), 2u);
  ASSERT_NE(f.params.convs[a].weights.shape(),
            f.params.convs[b].weights.shape());
  std::swap(f.params.convs[a], f.params.convs[b]);
  EXPECT_TRUE(has_error(f.verify(), diag::kWeightShape));
}

TEST(Verify, ThresholdChannelMismatchIsD203) {
  Fixture f;
  std::size_t a = 0;
  std::size_t b = f.params.bnacts.size() - 1;
  ASSERT_NE(f.params.bnacts[a].thresholds.channels(),
            f.params.bnacts[b].thresholds.channels());
  std::swap(f.params.bnacts[a], f.params.bnacts[b]);
  EXPECT_TRUE(has_error(f.verify(), diag::kThresholdChannels));
}

TEST(Verify, QuantizerWidthMismatchIsD204) {
  Fixture f;
  // The activation stream claims 3 bit-planes but the quantizer and the
  // folded thresholds produce 2-bit codes.
  f.node(f.first_node(NodeKind::BnAct)).out_bits = 3;
  EXPECT_TRUE(has_error(f.verify(), diag::kQuantizerBits));
}

// --------------------------------------------- (c) deadlock / capacity

TEST(Verify, UndersizedSkipFifoIsD301) {
  const Fixture f;
  FifoPlan plan = plan_fifos(f.pipeline);
  const int add = [&] {
    for (int i = 0; i < f.pipeline.size(); ++i) {
      if (f.pipeline.node(i).kind == NodeKind::Add) return i;
    }
    return -1;
  }();
  ASSERT_GE(add, 0);
  bool shrunk = false;
  for (PlannedStream& s : plan.streams) {
    if (s.consumer == add && s.to_skip_port) {
      s.capacity = 8;  // far below the full-feature-map lag bound
      shrunk = true;
    }
  }
  ASSERT_TRUE(shrunk);
  Report r;
  check_capacities(f.pipeline, plan, r);
  EXPECT_TRUE(has_error(r, diag::kSkipCapacity));
}

TEST(Verify, BurstAboveFifoCapacityClampsWithD302) {
  const Fixture f;
  EngineOptions options;
  options.fifo_capacity = 2;
  options.burst = 256;
  const FifoPlan plan = plan_fifos(f.pipeline, options);
  EXPECT_TRUE(plan.burst_clamped);
  EXPECT_EQ(plan.burst, 2u);
  const Report r = f.verify(options);
  EXPECT_TRUE(r.ok()) << r.str();  // degraded, not broken
  EXPECT_TRUE(r.has(diag::kBurstClamp));
}

TEST(Verify, ClampedEngineStaysBitExact) {
  // Satellite regression: fifo_capacity < burst used to push full bursts
  // at 2-deep rings; the engine now clamps its transaction size (D302)
  // and must stay bit-exact against the reference executor.
  const Fixture f;
  EngineOptions options;
  options.fifo_capacity = 2;
  options.burst = 256;
  StreamEngine engine(f.pipeline, f.params, options);
  const ReferenceExecutor ref(f.pipeline, f.params);
  Rng rng(31);
  const IntTensor img = testutil::random_image(12, 12, 3, rng);
  EXPECT_EQ(engine.run_one(img), ref.run(img));
}

TEST(Verify, ShallowUserFifoWarnsD303) {
  const Fixture f;
  EngineOptions options;
  options.fifo_capacity = 4;
  const Report r = f.verify(options);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.has(diag::kShallowFifo));
}

TEST(Verify, AutoSizedFifosNeverWarn) {
  const Fixture f;
  const Report r = f.verify();
  EXPECT_FALSE(r.has(diag::kShallowFifo));
  EXPECT_FALSE(r.has(diag::kBurstClamp));
}

TEST(Verify, PerEdgeBurstsAreRowSizedAndCapped) {
  const Fixture f;
  EngineOptions options;  // adaptive_burst on by default
  const FifoPlan plan = plan_fifos(f.pipeline, options);
  for (const PlannedStream& ps : plan.streams) {
    const Shape& carried = ps.producer < 0
                               ? f.pipeline.input
                               : f.pipeline.node(ps.producer).out;
    const auto row = static_cast<std::size_t>(carried.w) *
                     static_cast<std::size_t>(carried.c);
    EXPECT_EQ(ps.burst,
              std::max<std::size_t>(
                  1, std::min({row, plan.burst, ps.capacity})))
        << ps.name;
    EXPECT_LE(ps.burst, ps.capacity) << ps.name;  // D302 invariant
    EXPECT_GE(ps.burst, 1u) << ps.name;
  }
}

TEST(Verify, AdaptiveBurstOffUsesThePlanWideValueEverywhere) {
  const Fixture f;
  EngineOptions options;
  options.adaptive_burst = false;
  const FifoPlan plan = plan_fifos(f.pipeline, options);
  for (const PlannedStream& ps : plan.streams) {
    EXPECT_EQ(ps.burst, plan.burst) << ps.name;
  }
}

TEST(Verify, HandcraftedBurstAboveRingIsRejected) {
  // The engine consumes PlannedStream::burst verbatim, so the analyzer
  // must reject any plan whose per-edge burst could never complete.
  const Fixture f;
  FifoPlan plan = plan_fifos(f.pipeline);
  ASSERT_FALSE(plan.streams.empty());
  plan.streams.front().burst = plan.streams.front().capacity + 1;
  Report r;
  check_capacities(f.pipeline, plan, r);
  EXPECT_TRUE(has_error(r, diag::kBurstClamp));
}

// ------------------------------- (c) exact token-flow deadlock decisions

/// True when the report carries `code` at `severity` with `fragment`
/// somewhere in the message.
bool has_diag(const Report& report, const char* code, Severity severity,
              const char* fragment) {
  return std::any_of(
      report.diagnostics().begin(), report.diagnostics().end(),
      [&](const Diagnostic& d) {
        return d.code == code && d.severity == severity &&
               d.message.find(fragment) != std::string::npos;
      });
}

/// The default plan with the skip FIFO into `add` resized (burst clamped
/// to the ring so the D302 invariant holds, as a real plan would).
FifoPlan with_skip_capacity(const Pipeline& p, int add, std::size_t cap) {
  FifoPlan plan = plan_fifos(p);
  bool found = false;
  for (PlannedStream& s : plan.streams) {
    if (s.consumer == add && s.to_skip_port) {
      s.capacity = cap;
      s.burst = std::min(s.burst, cap);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "node " << add << " has no planned skip edge";
  return plan;
}

/// tiny's two residual adders: add_6 takes its skip straight off the fork
/// (the pure delay-buffer case), add_12's skip path carries its own
/// downsampling convolution (the re-convergent case).
constexpr int kForkFedAdd = 6;
constexpr int kReconvergentAdd = 12;

TEST(TokenFlow, BelowBoundSkipFifoIsProvedFeasibleExactly) {
  // 160 values is far below the 288-value feature-map bound that used to
  // be a hard D301 error, yet covers the regular path's true lag: the
  // exact simulation proves it safe under every schedule.
  const Fixture f;
  Report r;
  check_capacities(f.pipeline,
                   with_skip_capacity(f.pipeline, kForkFedAdd, 160), r);
  EXPECT_TRUE(r.ok()) << r.str();
  EXPECT_EQ(r.warnings(), 0) << r.str();
  EXPECT_TRUE(has_diag(r, diag::kSkipCapacity, Severity::kInfo,
                       "exact token-flow proof"))
      << r.str();
}

TEST(TokenFlow, ReconvergentSkipPathIsProvedFeasibleAtTinyCapacity) {
  // The skip path into add_12 runs through its own 1x1 stride-2
  // convolution, which lags the main path almost in lockstep — a 4-value
  // skip FIFO is enough, although the feature-map bound is 144.
  const Fixture f;
  Report r;
  check_capacities(f.pipeline,
                   with_skip_capacity(f.pipeline, kReconvergentAdd, 4), r);
  EXPECT_TRUE(r.ok()) << r.str();
  EXPECT_EQ(r.warnings(), 0) << r.str();
  EXPECT_TRUE(has_diag(r, diag::kSkipCapacity, Severity::kInfo,
                       "exact token-flow proof"))
      << r.str();
}

TEST(TokenFlow, TrulyUndersizedSkipFifoIsRefutedWithWitness) {
  // 8 values cannot absorb even one retained scanner row of the regular
  // path; the simulation deadlocks with full burst slack, and the error
  // names the quiescent cycle instead of just predicting it.
  const Fixture f;
  Report r;
  check_capacities(f.pipeline,
                   with_skip_capacity(f.pipeline, kForkFedAdd, 8), r);
  EXPECT_TRUE(has_error(r, diag::kSkipCapacity));
  EXPECT_TRUE(has_diag(r, diag::kSkipCapacity, Severity::kError,
                       "token-flow simulation deadlocks"))
      << r.str();
  EXPECT_TRUE(has_diag(r, diag::kSkipCapacity, Severity::kError, "blocked"))
      << r.str();
}

TEST(TokenFlow, ScheduleDependentCapacityIsD304NotAGuess) {
  // In the band where only burst buffers bridge the overhang, liveness
  // depends on how the scheduler interleaves refills — neither provable
  // nor refutable, and reported as exactly that.
  const Fixture f;
  Report r;
  check_capacities(f.pipeline,
                   with_skip_capacity(f.pipeline, kForkFedAdd, 64), r);
  EXPECT_TRUE(r.ok()) << r.str();
  EXPECT_TRUE(has_diag(r, diag::kUnprovable, Severity::kWarning,
                       "schedule-dependent"))
      << r.str();
}

TEST(TokenFlow, VerdictsBracketTheEngine) {
  const Fixture f;
  const auto verdict = [&](int add, std::size_t cap) {
    return prove_token_flow(f.pipeline,
                            with_skip_capacity(f.pipeline, add, cap))
        .verdict;
  };
  EXPECT_EQ(verdict(kForkFedAdd, 8), TokenVerdict::kDeadlock);
  EXPECT_EQ(verdict(kForkFedAdd, 64), TokenVerdict::kMarginal);
  EXPECT_EQ(verdict(kForkFedAdd, 160), TokenVerdict::kFeasible);
  EXPECT_EQ(verdict(kReconvergentAdd, 1), TokenVerdict::kFeasible);
}

TEST(TokenFlow, DeadlockWitnessNamesTheJammedSkipEdge) {
  const Fixture f;
  const TokenFlowResult r = prove_token_flow(
      f.pipeline, with_skip_capacity(f.pipeline, kForkFedAdd, 8));
  ASSERT_EQ(r.verdict, TokenVerdict::kDeadlock);
  EXPECT_NE(r.witness.find("maxpool_2=>add_6"), std::string::npos)
      << r.witness;
  EXPECT_NE(r.witness.find("full"), std::string::npos) << r.witness;
}

TEST(TokenFlow, ExhaustedBudgetIsUndecidedNeverAssumedSafe) {
  const Fixture f;
  TokenFlowBudget budget;
  budget.max_tokens = 100;  // far below one image of traffic
  const TokenFlowResult r = prove_token_flow(
      f.pipeline, with_skip_capacity(f.pipeline, kForkFedAdd, 160), budget);
  EXPECT_EQ(r.verdict, TokenVerdict::kUndecided);
}

TEST(TokenFlow, ProvedFeasiblePlanActuallyRuns) {
  // Close the loop on the proof: an engine wired with the below-bound
  // skip capacity the simulation proved safe must complete and stay
  // bit-exact against the reference executor.
  const Fixture f;
  CompiledPlan plan = compile_plan(f.pipeline);
  bool shrunk = false;
  for (PlannedStream& s : plan.fifos.streams) {
    if (s.consumer == kForkFedAdd && s.to_skip_port) {
      s.capacity = 160;
      s.burst = std::min<std::size_t>(s.burst, 160);
      shrunk = true;
    }
  }
  ASSERT_TRUE(shrunk);
  EngineOptions options;
  options.plan = &plan;
  StreamEngine engine(f.pipeline, f.params, options);
  const ReferenceExecutor ref(f.pipeline, f.params);
  Rng rng(53);
  const IntTensor img = testutil::random_image(12, 12, 3, rng);
  EXPECT_EQ(engine.run_one(img), ref.run(img));
}

// ------------------------------------------ (d) partition feasibility

TEST(Verify, OversubscribedMaxRingLinkIsD401) {
  const Fixture f;
  PartitionConfig config;
  config.link_gbps = 1e-6;  // practically no link bandwidth
  PartitionResult placement;
  placement.dfes.push_back(DfeAssignment{0, 0, 0, 0, 0, 0});
  placement.dfes.push_back(
      DfeAssignment{1, f.pipeline.size() - 1, 0, 0, 0, 0});
  Report r;
  check_partition(f.pipeline, placement, config, r);
  EXPECT_TRUE(has_error(r, diag::kLinkOversubscribed));
}

TEST(Verify, OverfilledDfeIsD402) {
  const Fixture f;
  PartitionConfig config;
  config.device.luts = 100;  // toy device: nothing fits
  PartitionResult placement;
  placement.dfes.push_back(
      DfeAssignment{0, f.pipeline.size() - 1, 0, 0, 0, 0});
  Report r;
  check_partition(f.pipeline, placement, config, r);
  EXPECT_TRUE(has_error(r, diag::kDfeOverfill));
}

TEST(Verify, PlacementBeyondNodeDfesIsD403) {
  const Fixture f;
  PartitionConfig config;
  config.max_dfes = 1;
  PartitionResult placement;
  placement.dfes.push_back(DfeAssignment{0, 0, 0, 0, 0, 0});
  placement.dfes.push_back(
      DfeAssignment{1, f.pipeline.size() - 1, 0, 0, 0, 0});
  Report r;
  check_partition(f.pipeline, placement, config, r);
  EXPECT_TRUE(has_error(r, diag::kTooManyDfes));
}

TEST(Verify, NonTilingSegmentsAreD404) {
  const Fixture f;
  PartitionResult placement;
  placement.dfes.push_back(DfeAssignment{0, 2, 0, 0, 0, 0});
  placement.dfes.push_back(
      DfeAssignment{2, f.pipeline.size() - 1, 0, 0, 0, 0});  // overlap
  Report r;
  check_partition(f.pipeline, placement, {}, r);
  EXPECT_TRUE(has_error(r, diag::kBadSegments));
}

// -------------------------------------------------- engine integration

TEST(Verify, EngineRefusesMalformedGraphWithDiagnosticCode) {
  Fixture f;
  f.node(f.first_node(NodeKind::Add)).skip_from = -1;
  try {
    StreamEngine engine(f.pipeline, f.params);
    FAIL() << "constructing an engine over a malformed graph must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("QNN-D004"), std::string::npos)
        << e.what();
  }
}

TEST(Verify, EngineVerificationCanBeOptedOut) {
  // Tests that need deliberately broken graphs (and the historical
  // behavior) can still construct an engine; it is just never run here.
  Fixture f;
  const int conv = f.first_node(NodeKind::Conv);
  f.node(conv).out_bits = 2;  // D104: truncating, but wireable
  EngineOptions options;
  options.verify = false;
  StreamEngine engine(f.pipeline, f.params, options);
  EXPECT_GT(engine.kernel_count(), 0);
}

TEST(Verify, SessionCompileRejectsSwappedWeightCaches) {
  Fixture f;
  std::swap(f.params.convs[0], f.params.convs[1]);
  try {
    (void)DfeSession::compile(models::tiny(12, 4, 2), f.params);
    FAIL() << "compile over mismatched weight caches must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("QNN-D202"), std::string::npos)
        << e.what();
  }
}

TEST(Verify, FifoPlanMatchesEngineStreamForStream) {
  const Fixture f;
  const EngineOptions options;
  const FifoPlan plan = plan_fifos(f.pipeline, options);
  StreamEngine engine(f.pipeline, f.params, options);
  ASSERT_EQ(static_cast<std::size_t>(engine.stream_count()),
            plan.streams.size());
  const auto traffic = engine.stream_traffic();
  for (std::size_t i = 0; i < plan.streams.size(); ++i) {
    EXPECT_EQ(traffic[i].first, plan.streams[i].name);
  }
}

TEST(Verify, ReportRendersCodesAndSummary) {
  Report r;
  r.error(diag::kDeadEnd, 3, "conv_3", "output stream is never consumed");
  r.warn(diag::kShallowFifo, 4, "edge", "shallow");
  r.info(diag::kSkipCapacity, 5, "edge", "proved");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.errors(), 1);
  EXPECT_EQ(r.warnings(), 1);
  EXPECT_EQ(r.count(diag::kDeadEnd), 1);
  const std::string text = r.str();
  EXPECT_NE(text.find("QNN-D002 [error] conv_3"), std::string::npos);
  // Severity filtering drops the info note but keeps the warning.
  EXPECT_EQ(r.str(Severity::kWarning).find("QNN-D301"), std::string::npos);
  EXPECT_NE(r.summary().find("FAIL"), std::string::npos);
}

TEST(Verify, ReportJsonIsMachineReadableAndEscaped) {
  Report r;
  r.error(diag::kDeadEnd, 3, "conv_3",
          "output \"stream\" is never\nconsumed");
  r.warn(diag::kShallowFifo, 4, "edge", "shallow");
  const std::string j = r.json();
  EXPECT_NE(j.find("\"ok\": false"), std::string::npos) << j;
  EXPECT_NE(j.find("\"errors\": 1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"warnings\": 1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"code\": \"QNN-D002\""), std::string::npos) << j;
  EXPECT_NE(j.find("\\\"stream\\\""), std::string::npos) << j;  // escaped
  EXPECT_NE(j.find("never\\nconsumed"), std::string::npos) << j;
  const Report empty;
  EXPECT_NE(empty.json().find("\"diagnostics\": []"), std::string::npos);
}

// ---------------------- compiled-plan consistency lint (D305/D61x)

TEST(PlanLint, FreshlyCompiledPlanReVerifiesWithInfoNote) {
  const Fixture f;
  const CompiledPlan plan = compile_plan(f.pipeline);
  Report r;
  lint_plan(f.pipeline, plan, r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.warnings(), 0) << r.str();
  EXPECT_TRUE(has_diag(r, diag::kPlanMismatch, Severity::kInfo,
                       "re-verified"))
      << r.str();
}

TEST(PlanLint, StaleModelHashIsD305NamingTheField) {
  const Fixture f;
  // Tune against a structurally different network, then apply here.
  const CompiledPlan plan = compile_plan(expand(models::tiny(16, 4, 2)));
  Report r;
  lint_plan(f.pipeline, plan, r);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, diag::kPlanMismatch, Severity::kError,
                       "field 'key.model_hash'"))
      << r.str();
}

TEST(PlanLint, WrongFormatVersionIsD305NamingTheField) {
  const Fixture f;
  CompiledPlan plan = compile_plan(f.pipeline);
  plan.version = kPlanFormatVersion + 1;
  Report r;
  lint_plan(f.pipeline, plan, r);
  EXPECT_TRUE(has_diag(r, diag::kPlanMismatch, Severity::kError,
                       "field 'version'"))
      << r.str();
}

TEST(PlanLint, ForeignMachineFingerprintIsD611Warning) {
  const Fixture f;
  CompiledPlan plan = compile_plan(f.pipeline);
  plan.key.machine = "aarch64-64c";
  Report r;
  lint_plan(f.pipeline, plan, r);
  EXPECT_TRUE(r.ok()) << r.str();  // still runs bit-exactly: warn, not error
  EXPECT_TRUE(has_diag(r, diag::kMachineDrift, Severity::kWarning,
                       "field 'key.machine'"))
      << r.str();
}

TEST(PlanLint, CorruptStreamTableIsD305NamingTheField) {
  const Fixture f;
  CompiledPlan plan = compile_plan(f.pipeline);
  plan.fifos.streams[0].capacity = 0;
  plan.fifos.streams[1].consumer = 99;
  Report r;
  lint_plan(f.pipeline, plan, r);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, diag::kPlanMismatch, Severity::kError,
                       "zero-capacity FIFO"))
      << r.str();
  EXPECT_TRUE(has_diag(r, diag::kPlanMismatch, Severity::kError,
                       "outside this pipeline's"))
      << r.str();
  // The offending field is named in the finding's location.
  EXPECT_NE(r.str().find(".capacity"), std::string::npos) << r.str();
  EXPECT_NE(r.str().find(".consumer"), std::string::npos) << r.str();
}

TEST(PlanLint, MissingEdgeIsD305) {
  const Fixture f;
  CompiledPlan plan = compile_plan(f.pipeline);
  plan.fifos.streams.pop_back();  // truncated file lost an edge
  Report r;
  lint_plan(f.pipeline, plan, r);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, diag::kPlanMismatch, Severity::kError,
                       "has no planned stream"))
      << r.str();
}

TEST(PlanLint, BurstAboveOwnFifoIsD612Error) {
  const Fixture f;
  CompiledPlan plan = compile_plan(f.pipeline);
  plan.fifos.streams[0].burst = plan.fifos.streams[0].capacity + 1;
  Report r;
  lint_plan(f.pipeline, plan, r);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r, diag::kBurstFifoSkew, Severity::kError,
                       "exceeds the stream's own FIFO capacity"))
      << r.str();
}

TEST(PlanLint, LinkBurstDisagreeingWithPlanIsD612Warning) {
  const Fixture f;
  CompiledPlan plan = compile_plan(f.pipeline);
  ASSERT_FALSE(plan.link_bursts.empty());
  plan.link_bursts[0].values += 1;
  Report r;
  lint_plan(f.pipeline, plan, r);
  EXPECT_TRUE(r.ok()) << r.str();  // only the link models are mis-priced
  EXPECT_TRUE(has_diag(r, diag::kBurstFifoSkew, Severity::kWarning,
                       "field 'link_bursts'"))
      << r.str();
}

TEST(PlanLint, VerifyGraphRunsTheLintOnArmedPlans) {
  const Fixture f;
  CompiledPlan plan = compile_plan(f.pipeline);
  plan.fifos.streams[0].burst = plan.fifos.streams[0].capacity + 1;
  EngineOptions options;
  options.plan = &plan;
  const Report r = f.verify(options);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(diag::kBurstFifoSkew)) << r.str();
  // And the engine refuses to arm it, with the code in the error text.
  try {
    StreamEngine engine(f.pipeline, f.params, options);
    FAIL() << "engine must refuse a skewed plan";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("QNN-D612"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------- replica pool pinning (D610)

TEST(PlanLint, OverlappingPinWindowsAreD610) {
  Report r;
  lint_pool_pinning({{"replica 0 (engine)", 0, 4},
                     {"replica 1 (engine)", 2, 4}},
                    r, /*hardware_cores=*/16);
  EXPECT_TRUE(r.ok());  // throughput hazard, not a correctness error
  EXPECT_TRUE(has_diag(r, diag::kPinOverlap, Severity::kWarning,
                       "overlaps 'replica 1 (engine)' on cores [2, 4)"))
      << r.str();
}

TEST(PlanLint, DisjointPinWindowsLintCleanWithInfoNote) {
  Report r;
  lint_pool_pinning({{"replica 0", 0, 4},
                     {"replica 1", 4, 4},
                     {"replica 2", 8, 4}},
                    r, /*hardware_cores=*/16);
  EXPECT_EQ(r.warnings(), 0) << r.str();
  EXPECT_TRUE(has_diag(r, diag::kPinOverlap, Severity::kInfo,
                       "pairwise disjoint"))
      << r.str();
}

TEST(PlanLint, WindowPastTheLastCoreIsD610BecausePinsWrap) {
  Report r;
  lint_pool_pinning({{"replica 0", 14, 4}}, r, /*hardware_cores=*/16);
  EXPECT_TRUE(has_diag(r, diag::kPinOverlap, Severity::kWarning,
                       "wraps pins modulo the core count"))
      << r.str();
}

TEST(PlanLint, UnpinnedWindowsAreIgnored) {
  Report r;
  lint_pool_pinning({{"replica 0", 0, 0}, {"replica 1", 0, 0}}, r,
                    /*hardware_cores=*/16);
  EXPECT_EQ(static_cast<int>(r.diagnostics().size()), 0) << r.str();
}

}  // namespace
}  // namespace qnn
