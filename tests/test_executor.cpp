// Scheduler-level tests of the ready-queue work-stealing executor: deep
// chains across thread counts, cancel/reset under stealing, core-pinning
// smoke, error propagation, and the rescue-sweep liveness backstop for
// kernels that bind no streams. All of these run under TSan via the
// `sanitize` label — the readiness protocol's happens-before chain
// (state CASes + deque mutexes) is exactly what TSan checks.
#include "dataflow/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "dataflow/engine.h"
#include "models/zoo.h"
#include "nn/reference.h"
#include "test_util.h"

namespace qnn {
namespace {

/// A straight pipeline of `convs` (conv + bnact) pairs: 2*convs + 1 nodes,
/// so convs >= 25 exceeds the 50-kernel depth where a round-robin sweep
/// wastes whole passes on the few runnable tasks.
NetworkSpec deep_chain(int convs) {
  NetworkSpec spec;
  spec.name = "deep_chain_" + std::to_string(convs);
  spec.input = Shape{8, 8, 2};
  for (int i = 0; i < convs; ++i) spec.conv(2, 3, 1, 1);
  spec.dense(3, false);
  return spec;
}

TEST(ReadyQueue, DeepChainBitExactAcrossThreadCounts) {
  const NetworkSpec spec = deep_chain(26);  // 53 kernels + feeder/collector
  const Pipeline p = expand(spec);
  ASSERT_GE(p.size(), 50);
  const NetworkParams params = NetworkParams::random(p, 41);
  const ReferenceExecutor ref(p, params);
  Rng rng(42);
  std::vector<IntTensor> batch;
  for (int i = 0; i < 2; ++i) {
    batch.push_back(testutil::random_codes(spec.input, spec.input_bits, rng));
  }
  std::vector<IntTensor> want;
  for (const IntTensor& img : batch) want.push_back(ref.run(img));

  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    EngineOptions opt;
    opt.executor = ExecutorKind::kReadyQueue;
    opt.pool_threads = threads;
    StreamEngine engine(p, params, opt);
    const auto got = engine.run(batch);
    ASSERT_EQ(got.size(), want.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "threads=" << threads << " image " << i;
    }
  }
}

TEST(ReadyQueue, PinnedWorkersStayBitExact) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline p = expand(spec);
  const NetworkParams params = NetworkParams::random(p, 43);
  Rng rng(44);
  const IntTensor img = testutil::random_image(12, 12, 3, rng);

  StreamEngine plain(p, params);
  const IntTensor want = plain.run_one(img);

  EngineOptions opt;
  opt.executor = ExecutorKind::kReadyQueue;
  opt.pool_threads = 3;
  opt.pin_threads = true;
  opt.pin_offset = 1;  // replica-style staggered window
  StreamEngine pinned(p, params, opt);
  EXPECT_EQ(pinned.run_one(img), want);
  EXPECT_EQ(pinned.run_one(img), want);  // reusable when pinned, too
}

// Cancelling a deep multi-worker run lands the abort while tasks are
// mid-steal and mid-notify; the engine must recover to a pristine,
// bit-exact state — including the readiness bindings, which are torn
// down even when run() throws.
TEST(ReadyQueue, CancelUnderStealRecovers) {
  const NetworkSpec spec = deep_chain(26);
  const Pipeline p = expand(spec);
  const NetworkParams params = NetworkParams::random(p, 45);
  EngineOptions opt;
  opt.executor = ExecutorKind::kReadyQueue;
  opt.pool_threads = 4;
  StreamEngine engine(p, params, opt);
  Rng rng(46);
  const IntTensor img =
      testutil::random_codes(spec.input, spec.input_bits, rng);
  const IntTensor good = engine.run_one(img);

  for (int round = 0; round < 3; ++round) {
    std::vector<IntTensor> batch;
    for (int i = 0; i < 32; ++i) batch.push_back(img);
    std::atomic<bool> stop{false};
    std::thread canceller([&] {
      while (!stop.load()) {
        engine.cancel();
        std::this_thread::yield();
      }
    });
    EXPECT_THROW((void)engine.run(batch), Error);
    stop.store(true);
    canceller.join();
    EXPECT_EQ(engine.run_one(img), good) << "round " << round;
  }
}

// ---- direct Executor tests with synthetic tasks -------------------------

/// Counts steps and finishes after `limit`; binds no streams, so it only
/// runs when queued (seed or rescue sweep).
class CountingTask final : public Kernel {
 public:
  CountingTask(std::string name, int limit)
      : Kernel(std::move(name)), limit_(limit) {}

  StepResult step() override {
    return ++steps_ >= limit_ ? StepResult::kDone : StepResult::kProgress;
  }

  [[nodiscard]] int steps() const { return steps_; }

 private:
  int limit_;
  int steps_ = 0;
};

/// Blocked until a shared flag rises — and nothing ever wakes it, because
/// it binds no streams. Only the executor's rescue sweep can revive it.
class GatedTask final : public Kernel {
 public:
  GatedTask(std::string name, std::atomic<bool>& gate)
      : Kernel(std::move(name)), gate_(gate) {}

  StepResult step() override {
    return gate_.load(std::memory_order_acquire) ? StepResult::kDone
                                                 : StepResult::kBlocked;
  }

 private:
  std::atomic<bool>& gate_;
};

class ThrowingTask final : public Kernel {
 public:
  ThrowingTask(std::string name, int after)
      : Kernel(std::move(name)), after_(after) {}

  StepResult step() override {
    if (++steps_ >= after_) throw Error("synthetic task failure");
    return StepResult::kProgress;
  }

 private:
  int after_;
  int steps_ = 0;
};

/// Raises the gate after `limit` steps; models a producer whose effect is
/// invisible to the stream-wake seam.
class GateRaiserTask final : public Kernel {
 public:
  GateRaiserTask(std::string name, int limit, std::atomic<bool>& gate)
      : Kernel(std::move(name)), limit_(limit), gate_(gate) {}

  StepResult step() override {
    if (++steps_ >= limit_) {
      gate_.store(true, std::memory_order_release);
      return StepResult::kDone;
    }
    return StepResult::kProgress;
  }

 private:
  int limit_;
  std::atomic<bool>& gate_;
  int steps_ = 0;
};

TEST(ReadyQueue, UnboundKernelsAreRescuedWithoutWakes) {
  std::atomic<bool> gate{false};
  GatedTask consumer("gated", gate);
  GateRaiserTask producer("raiser", 100, gate);
  std::vector<Kernel*> tasks{&consumer, &producer};
  std::atomic<bool> abort{false};
  auto ex = make_ready_queue_executor(2);
  // Terminates only if the rescue sweep re-queues the gated task after
  // its (un-woken) kIdle parking; a lost task would hang here forever.
  ex->run(tasks, abort);
  EXPECT_TRUE(gate.load());
}

TEST(ReadyQueue, ManyTasksCompleteAcrossStealing) {
  std::vector<std::unique_ptr<CountingTask>> owned;
  std::vector<Kernel*> tasks;
  for (int i = 0; i < 64; ++i) {
    owned.push_back(std::make_unique<CountingTask>(
        "count_" + std::to_string(i), 50 + i));
    tasks.push_back(owned.back().get());
  }
  std::atomic<bool> abort{false};
  auto ex = make_ready_queue_executor(4);
  ex->run(tasks, abort);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(owned[i]->steps(), 50 + i);
}

TEST(ReadyQueue, TaskExceptionAbortsBlockedPeers) {
  std::atomic<bool> never{false};
  GatedTask stuck_a("stuck_a", never);
  GatedTask stuck_b("stuck_b", never);
  ThrowingTask thrower("thrower", 10);
  std::vector<Kernel*> tasks{&stuck_a, &thrower, &stuck_b};
  std::atomic<bool> abort{false};
  auto ex = make_ready_queue_executor(3);
  // The exception must abort the run (not hang on the stuck tasks) and
  // surface to the caller after all workers joined.
  EXPECT_THROW(ex->run(tasks, abort), Error);
  EXPECT_TRUE(abort.load());
}

TEST(ReadyQueue, ExternalAbortUnblocksParkedWorkers) {
  std::atomic<bool> never{false};
  GatedTask stuck("stuck", never);
  std::vector<Kernel*> tasks{&stuck};
  std::atomic<bool> abort{false};
  auto ex = make_ready_queue_executor(2);
  std::thread aborter([&abort] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    abort.store(true, std::memory_order_relaxed);
  });
  EXPECT_THROW(ex->run(tasks, abort), Error);  // "dataflow run aborted"
  aborter.join();
}

TEST(ReadyQueue, ZeroTasksIsANoOp) {
  std::atomic<bool> abort{false};
  auto ex = make_ready_queue_executor(2);
  ex->run({}, abort);
}

}  // namespace
}  // namespace qnn
