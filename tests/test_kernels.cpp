// Unit tests of the individual dataflow kernels, driven through raw
// streams (no engine), including protocol-violation failure injection.
#include "dataflow/kernels.h"

#include <gtest/gtest.h>

#include <thread>

#include "test_util.h"

namespace qnn {
namespace {

Node conv_node(Shape in, int out_c, int k, int stride, int pad,
               int in_bits) {
  Node n;
  n.kind = NodeKind::Conv;
  n.name = "conv_t";
  n.in = in;
  n.out = conv_out_shape(in, out_c, k, stride, pad);
  n.in_bits = in_bits;
  n.out_bits = preact_bits(static_cast<std::int64_t>(k) * k * in.c, in_bits);
  n.k = k;
  n.stride = stride;
  n.pad = pad;
  n.param = 0;
  return n;
}

/// Push a whole tensor depth-first, then optionally close.
void feed(Stream& s, const IntTensor& t, bool close) {
  for (std::int64_t i = 0; i < t.size(); ++i) s.push(t[i]);
  if (close) s.close();
}

std::vector<std::int32_t> drain(Stream& s) {
  std::vector<std::int32_t> out;
  std::int32_t v;
  while (s.pop(v)) out.push_back(v);
  return out;
}

TEST(ConvKernelTest, AllPlusOneFilterComputesWindowSums) {
  const Shape in{4, 4, 1};
  const Node n = conv_node(in, 1, 2, 1, 0, 4);
  WeightTensor w(FilterShape{1, 2, 1});
  for (auto& x : w.raw()) x = 1.0f;
  const FilterBank fb = FilterBank::binarize(w);

  Stream sin(64, 4, "in");
  Stream sout(64, 16, "out");
  ConvKernel kernel(n, fb, sin, sout);

  IntTensor img(in);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) img.at(y, x, 0) = y * 4 + x;
  }
  std::thread feeder([&] { feed(sin, img, true); });
  kernel.run();
  feeder.join();
  const auto out = drain(sout);
  ASSERT_EQ(out.size(), 9u);  // 3x3 output positions
  EXPECT_EQ(out[0], 0 + 1 + 4 + 5);
  EXPECT_EQ(out[4], 5 + 6 + 9 + 10);
  EXPECT_EQ(out[8], 10 + 11 + 14 + 15);
}

TEST(ConvKernelTest, EmitsAllFiltersPerPosition) {
  const Shape in{2, 2, 2};
  const Node n = conv_node(in, 3, 2, 1, 0, 2);
  Rng rng(5);
  const FilterBank fb = FilterBank::random(n.filter_shape(), rng);
  Stream sin(32, 2, "in");
  Stream sout(32, 8, "out");
  ConvKernel kernel(n, fb, sin, sout);
  IntTensor img = testutil::random_codes(in, 2, rng);
  std::thread feeder([&] { feed(sin, img, true); });
  kernel.run();
  feeder.join();
  const auto out = drain(sout);
  ASSERT_EQ(out.size(), 3u);  // one position, three filters
  for (int o = 0; o < 3; ++o) {
    std::int32_t expect = 0;
    for (int dy = 0; dy < 2; ++dy) {
      for (int dx = 0; dx < 2; ++dx) {
        for (int ci = 0; ci < 2; ++ci) {
          expect += fb.signed_weight(o, dy, dx, ci) * img.at(dy, dx, ci);
        }
      }
    }
    EXPECT_EQ(out[static_cast<std::size_t>(o)], expect) << "filter " << o;
  }
}

TEST(ConvKernelTest, ProcessesMultipleImagesBackToBack) {
  const Shape in{3, 3, 1};
  const Node n = conv_node(in, 1, 3, 1, 0, 4);
  WeightTensor w(FilterShape{1, 3, 1});
  for (auto& x : w.raw()) x = 1.0f;
  const FilterBank fb = FilterBank::binarize(w);
  Stream sin(64, 4, "in");
  Stream sout(64, 16, "out");
  ConvKernel kernel(n, fb, sin, sout);
  IntTensor a(in, 1);  // all ones: window sum = 9
  IntTensor b(in, 2);  // all twos: window sum = 18
  std::thread feeder([&] {
    feed(sin, a, false);
    feed(sin, b, true);
  });
  kernel.run();
  feeder.join();
  const auto out = drain(sout);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(out[1], 18);
}

TEST(ConvKernelTest, ClosedMidImageIsProtocolError) {
  const Shape in{3, 3, 1};
  const Node n = conv_node(in, 1, 3, 1, 0, 4);
  Rng rng(6);
  const FilterBank fb = FilterBank::random(n.filter_shape(), rng);
  Stream sin(64, 4, "in");
  Stream sout(64, 16, "out");
  ConvKernel kernel(n, fb, sin, sout);
  std::thread feeder([&] {
    for (int i = 0; i < 4; ++i) sin.push(1);  // 4 of 9 values
    sin.close();
  });
  EXPECT_THROW(kernel.run(), Error);
  feeder.join();
}

TEST(PoolKernelTest, MaxAndSumReductions) {
  Node n;
  n.kind = NodeKind::MaxPool;
  n.name = "pool_t";
  n.in = Shape{2, 2, 2};
  n.out = Shape{1, 1, 2};
  n.in_bits = n.out_bits = 4;
  n.k = 2;
  n.stride = 2;
  n.pad = 0;

  Stream sin(32, 4, "in");
  Stream sout(32, 4, "out");
  PoolKernel kernel(n, sin, sout);
  IntTensor img(n.in);
  img.at(0, 0, 0) = 3;
  img.at(0, 1, 0) = 7;
  img.at(1, 0, 0) = 1;
  img.at(1, 1, 0) = 5;
  img.at(0, 0, 1) = 2;
  img.at(0, 1, 1) = 2;
  img.at(1, 0, 1) = 9;
  img.at(1, 1, 1) = 4;
  std::thread feeder([&] { feed(sin, img, true); });
  kernel.run();
  feeder.join();
  const auto out = drain(sout);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[1], 9);

  // Same geometry as an average (window-sum) pool.
  n.kind = NodeKind::AvgPool;
  n.out_bits = 6;
  Stream sin2(32, 4, "in2");
  Stream sout2(32, 6, "out2");
  PoolKernel sum_kernel(n, sin2, sout2);
  std::thread feeder2([&] { feed(sin2, img, true); });
  sum_kernel.run();
  feeder2.join();
  const auto sums = drain(sout2);
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_EQ(sums[0], 3 + 7 + 1 + 5);
  EXPECT_EQ(sums[1], 2 + 2 + 9 + 4);
}

TEST(PoolKernelTest, AsymmetricPaddingRegression) {
  // k=2, stride=2, pad=1 on a 3x3 map: every window sees a different
  // amount of padding (3 pad values at the top-left corner, 2 on edges,
  // 0 at the interior position). Pins the channel-contiguous reduction to
  // a plain per-window reference, bit-exactly, for max and sum pooling.
  Node n;
  n.kind = NodeKind::MaxPool;
  n.name = "pool_asym";
  n.in = Shape{3, 3, 2};
  n.out = Shape{2, 2, 2};
  n.in_bits = n.out_bits = 6;
  n.k = 2;
  n.stride = 2;
  n.pad = 1;

  IntTensor img(n.in);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      for (int c = 0; c < 2; ++c) img.at(y, x, c) = y * 16 + x * 4 + c + 1;
    }
  }
  // Reference: reduce each (possibly padded) window directly.
  std::vector<std::int32_t> expect_max;
  std::vector<std::int32_t> expect_sum;
  for (int oy = 0; oy < 2; ++oy) {
    for (int ox = 0; ox < 2; ++ox) {
      for (int c = 0; c < 2; ++c) {
        std::int32_t best = 0;
        std::int32_t sum = 0;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            const int y = oy * 2 + dy - 1;
            const int x = ox * 2 + dx - 1;
            const std::int32_t v =
                (y >= 0 && y < 3 && x >= 0 && x < 3) ? img.at(y, x, c) : 0;
            best = std::max(best, v);
            sum += v;
          }
        }
        expect_max.push_back(best);
        expect_sum.push_back(sum);
      }
    }
  }

  Stream sin(64, 6, "in");
  Stream sout(64, 6, "out");
  PoolKernel max_kernel(n, sin, sout);
  std::thread feeder([&] { feed(sin, img, true); });
  max_kernel.run();
  feeder.join();
  EXPECT_EQ(drain(sout), expect_max);

  n.kind = NodeKind::AvgPool;
  n.out_bits = 8;
  Stream sin2(64, 6, "in2");
  Stream sout2(64, 8, "out2");
  PoolKernel sum_kernel(n, sin2, sout2);
  std::thread feeder2([&] { feed(sin2, img, true); });
  sum_kernel.run();
  feeder2.join();
  EXPECT_EQ(drain(sout2), expect_sum);
}

TEST(BnActKernelTest, PerChannelThresholdsInDepthFirstOrder) {
  Node n;
  n.kind = NodeKind::BnAct;
  n.name = "bnact_t";
  n.in = n.out = Shape{1, 2, 2};
  n.in_bits = 8;
  n.out_bits = 2;
  n.param = 0;

  // Channel 0: identity BatchNorm, d=2 (codes 0..3 at 2,4,6).
  // Channel 1: negated BatchNorm.
  BnLayerParams bn(2);
  bn.at(1).gamma = -1.0f;
  const ActQuantizer q(2, 2.0);
  const ThresholdLayer thresholds = ThresholdLayer::fold(bn, q);

  Stream sin(32, 8, "in");
  Stream sout(32, 2, "out");
  BnActKernel kernel(n, thresholds, sin, sout);
  std::thread feeder([&] {
    // (x=0: c0=5, c1=-5), (x=1: c0=1, c1=-7)
    sin.push(5);
    sin.push(-5);
    sin.push(1);
    sin.push(-7);
    sin.close();
  });
  kernel.run();
  feeder.join();
  const auto out = drain(sout);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 2);  // 5 in [4,6)
  EXPECT_EQ(out[1], 2);  // -(-5)=5
  EXPECT_EQ(out[2], 0);  // 1 < 2
  EXPECT_EQ(out[3], 3);  // 7 >= 6
}

TEST(BnActKernelTest, LutPathBitExactOverAllCodesAndChannels) {
  // in_bits = 6: the kernel tabulates the staircase (64 entries/channel).
  // Stream every representable preactivation through every channel —
  // including a negated-slope channel and a degenerate constant channel —
  // and require bit-identity with the binary-search path.
  Node n;
  n.kind = NodeKind::BnAct;
  n.name = "bnact_lut";
  n.in = n.out = Shape{1, 64, 3};
  n.in_bits = 6;
  n.out_bits = 2;
  n.param = 0;

  BnLayerParams bn(3);
  bn.at(1).gamma = -0.7f;  // negative slope
  bn.at(1).beta = 1.3f;
  bn.at(2).gamma = 0.0f;  // constant channel
  const ActQuantizer q(2, 2.0);
  const ThresholdLayer thresholds = ThresholdLayer::fold(bn, q);
  ASSERT_TRUE(thresholds.at(2).is_constant());

  Stream sin(512, 8, "in");
  Stream sout(512, 2, "out");
  BnActKernel kernel(n, thresholds, sin, sout);
  ASSERT_TRUE(kernel.uses_lut());

  std::vector<std::int32_t> expect;
  std::thread feeder([&] {
    for (std::int32_t a = -32; a < 32; ++a) {
      for (int c = 0; c < 3; ++c) sin.push(a);
    }
    sin.close();
  });
  for (std::int32_t a = -32; a < 32; ++a) {
    for (int c = 0; c < 3; ++c) {
      expect.push_back(thresholds.at(c).eval_binary_search(a));
    }
  }
  kernel.run();
  feeder.join();
  EXPECT_EQ(drain(sout), expect);
}

TEST(BnActKernelTest, LutFallsBackOutsideTableAndGatesOnWidth) {
  // Out-of-table preactivations (|a| beyond the in_bits domain) must take
  // the binary-search fallback; wide domains (> 8 bits) skip the LUT
  // entirely. Both stay bit-identical to the search.
  BnLayerParams bn(1);
  const ActQuantizer q(2, 2.0);
  const ThresholdLayer thresholds = ThresholdLayer::fold(bn, q);

  Node n;
  n.kind = NodeKind::BnAct;
  n.name = "bnact_oob";
  n.in = n.out = Shape{1, 3, 1};
  n.in_bits = 4;  // table covers [-8, 8)
  n.out_bits = 2;
  n.param = 0;
  Stream sin(32, 8, "in");
  Stream sout(32, 2, "out");
  BnActKernel kernel(n, thresholds, sin, sout);
  ASSERT_TRUE(kernel.uses_lut());
  std::thread feeder([&] {
    for (std::int32_t a : {100, -100, 7}) sin.push(a);
    sin.close();
  });
  kernel.run();
  feeder.join();
  const auto out = drain(sout);
  const auto& t = thresholds.at(0);
  EXPECT_EQ(out, (std::vector<std::int32_t>{t.eval_binary_search(100),
                                            t.eval_binary_search(-100),
                                            t.eval_binary_search(7)}));

  n.in_bits = 16;
  Stream sin2(32, 16, "in2");
  Stream sout2(32, 2, "out2");
  BnActKernel wide(n, thresholds, sin2, sout2);
  EXPECT_FALSE(wide.uses_lut());
}

TEST(AddKernelTest, SumsAndPropagatesClose) {
  Node n;
  n.kind = NodeKind::Add;
  n.name = "add_t";
  n.in = n.out = Shape{1, 1, 3};
  n.in_bits = n.out_bits = 16;
  n.main_from = 0;
  n.skip_from = 1;

  Stream main(8, 16, "main");
  Stream skip(8, 16, "skip");
  Stream out(8, 16, "out");
  AddKernel kernel(n, main, skip, out);
  std::thread feeder([&] {
    for (std::int32_t v : {1, 2, 3}) main.push(v);
    for (std::int32_t v : {10, 20, 30}) skip.push(v);
    main.close();
    skip.close();
  });
  kernel.run();
  feeder.join();
  const auto sums = drain(out);
  EXPECT_EQ(sums, (std::vector<std::int32_t>{11, 22, 33}));
  EXPECT_TRUE(out.closed());
}

TEST(AddKernelTest, SkipShorterThanMainIsError) {
  Node n;
  n.kind = NodeKind::Add;
  n.name = "add_t";
  n.in = n.out = Shape{1, 1, 2};
  n.in_bits = n.out_bits = 16;
  n.skip_from = 0;
  Stream main(8, 16, "main");
  Stream skip(8, 16, "skip");
  Stream out(8, 16, "out");
  AddKernel kernel(n, main, skip, out);
  std::thread feeder([&] {
    main.push(1);
    main.push(2);
    main.close();
    skip.push(1);
    skip.close();  // one value short
  });
  EXPECT_THROW(kernel.run(), Error);
  feeder.join();
}

TEST(AddKernelTest, MainShorterThanSkipIsError) {
  Node n;
  n.kind = NodeKind::Add;
  n.name = "add_t";
  n.in = n.out = Shape{1, 1, 2};
  n.in_bits = n.out_bits = 16;
  n.skip_from = 0;
  Stream main(8, 16, "main");
  Stream skip(8, 16, "skip");
  Stream out(8, 16, "out");
  AddKernel kernel(n, main, skip, out);
  std::thread feeder([&] {
    main.push(1);
    main.close();
    skip.push(1);
    skip.push(2);  // leftover
    skip.close();
  });
  EXPECT_THROW(kernel.run(), Error);
  feeder.join();
}

TEST(ForkKernelTest, DuplicatesToAllBranches) {
  Stream in(8, 4, "in");
  Stream a(8, 4, "a");
  Stream b(8, 4, "b");
  Stream c(8, 4, "c");
  ForkKernel kernel("fork_t", in, {&a, &b, &c});
  std::thread feeder([&] {
    for (std::int32_t v : {4, 5, 6}) in.push(v);
    in.close();
  });
  kernel.run();
  feeder.join();
  const std::vector<std::int32_t> expect{4, 5, 6};
  EXPECT_EQ(drain(a), expect);
  EXPECT_EQ(drain(b), expect);
  EXPECT_EQ(drain(c), expect);
  EXPECT_TRUE(a.closed());
  EXPECT_TRUE(c.closed());
}

TEST(ForkKernelTest, RequiresAtLeastTwoBranches) {
  Stream in(8, 4, "in");
  Stream a(8, 4, "a");
  EXPECT_THROW(ForkKernel("fork_t", in, {&a}), Error);
}

TEST(ConvKernelTest, RejectsMismatchedWeightBank) {
  const Node n = conv_node(Shape{4, 4, 2}, 3, 3, 1, 1, 2);
  Rng rng(8);
  const FilterBank wrong = FilterBank::random(FilterShape{3, 3, 4}, rng);
  Stream sin(8, 2, "in");
  Stream sout(8, 8, "out");
  EXPECT_THROW(ConvKernel(n, wrong, sin, sout), Error);
}

}  // namespace
}  // namespace qnn
