#include "quant/binarize.h"

#include <gtest/gtest.h>

namespace qnn {
namespace {

TEST(WeightTensor, LayoutIsDepthFirstWithinFilter) {
  WeightTensor w(FilterShape{2, 2, 3});
  float v = 0.0f;
  for (int o = 0; o < 2; ++o) {
    for (int dy = 0; dy < 2; ++dy) {
      for (int dx = 0; dx < 2; ++dx) {
        for (int ci = 0; ci < 3; ++ci) w.at(o, dy, dx, ci) = v++;
      }
    }
  }
  for (std::size_t i = 0; i < w.raw().size(); ++i) {
    EXPECT_EQ(w.raw()[i], static_cast<float>(i));
  }
}

TEST(FilterBank, BinarizeSignConvention) {
  WeightTensor w(FilterShape{1, 1, 4});
  w.at(0, 0, 0, 0) = 0.5f;
  w.at(0, 0, 0, 1) = -0.5f;
  w.at(0, 0, 0, 2) = 0.0f;  // zero binarizes to +1
  w.at(0, 0, 0, 3) = -1e-9f;
  const FilterBank fb = FilterBank::binarize(w);
  EXPECT_EQ(fb.signed_weight(0, 0, 0, 0), +1);
  EXPECT_EQ(fb.signed_weight(0, 0, 0, 1), -1);
  EXPECT_EQ(fb.signed_weight(0, 0, 0, 2), +1);
  EXPECT_EQ(fb.signed_weight(0, 0, 0, 3), -1);
}

TEST(FilterBank, PackedBitsMatchSignedWeights) {
  Rng rng(11);
  const FilterShape shape{4, 3, 5};
  WeightTensor w(shape);
  for (auto& x : w.raw()) x = rng.next_gaussian();
  const FilterBank fb = FilterBank::binarize(w);
  for (int o = 0; o < shape.out_c; ++o) {
    std::int64_t i = 0;
    for (int dy = 0; dy < shape.k; ++dy) {
      for (int dx = 0; dx < shape.k; ++dx) {
        for (int ci = 0; ci < shape.in_c; ++ci, ++i) {
          const int expect = w.at(o, dy, dx, ci) >= 0.0f ? +1 : -1;
          EXPECT_EQ(fb.signed_weight(o, dy, dx, ci), expect);
          EXPECT_EQ(fb.filter(o).get(i), expect == +1);
        }
      }
    }
  }
}

TEST(FilterBank, RandomBankKeepsTailInvariant) {
  Rng rng(13);
  // 3*3*5 = 45 bits: the final word has a 19-bit tail that must stay zero
  // or popcount-based dots would be wrong.
  const FilterBank fb = FilterBank::random(FilterShape{8, 3, 5}, rng);
  for (int o = 0; o < 8; ++o) {
    const BitVector& f = fb.filter(o);
    int manual = 0;
    for (std::int64_t i = 0; i < f.bits(); ++i) manual += f.get(i);
    EXPECT_EQ(f.count(), manual) << "tail bits leaked into popcount";
  }
}

TEST(FilterBank, RandomBankIsDeterministic) {
  Rng a(21);
  Rng b(21);
  const FilterBank fa = FilterBank::random(FilterShape{3, 3, 8}, a);
  const FilterBank fb = FilterBank::random(FilterShape{3, 3, 8}, b);
  for (int o = 0; o < 3; ++o) {
    EXPECT_EQ(fa.filter(o), fb.filter(o));
  }
}

TEST(FilterBank, FilterSizeMatchesWeightCacheEntry) {
  const FilterShape shape{64, 3, 128};
  FilterBank fb(shape);
  // One cache address stores all K*K*I weights of one filter (§III-B1a).
  EXPECT_EQ(fb.filter(0).bits(), 3 * 3 * 128);
}

}  // namespace
}  // namespace qnn
