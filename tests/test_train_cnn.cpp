#include "train/qat_cnn.h"

#include <gtest/gtest.h>

#include "dataflow/engine.h"
#include "nn/reference.h"
#include "nn/serialize.h"

namespace qnn {
namespace {

ImageDataset easy_patterns() {
  return make_pattern_task(3, 10, 10, 1, 40, 17);
}

QatCnnConfig small_config(int bits = 2, int epochs = 15) {
  QatCnnConfig cfg;
  cfg.stages = {QatCnnConfig::conv(6, 3, 1, 1), QatCnnConfig::pool(2, 2),
                QatCnnConfig::conv(8, 3, 1, 1), QatCnnConfig::pool(2, 2)};
  cfg.act_bits = bits;
  cfg.epochs = epochs;
  cfg.seed = 9;
  return cfg;
}

TEST(PatternTask, ShapesAndBalance) {
  const ImageDataset ds = make_pattern_task(4, 8, 9, 2, 10, 1);
  EXPECT_EQ(ds.size(), 40);
  EXPECT_EQ(ds.image, (Shape{8, 9, 2}));
  int per_class[4] = {};
  for (int i = 0; i < ds.size(); ++i) {
    ASSERT_EQ(ds.images[static_cast<std::size_t>(i)].shape(), ds.image);
    ++per_class[ds.labels[static_cast<std::size_t>(i)]];
  }
  for (int k = 0; k < 4; ++k) EXPECT_EQ(per_class[k], 10);
}

TEST(PatternTask, SplitDisjointAndComplete) {
  const ImageDataset ds = make_pattern_task(3, 8, 8, 1, 20, 2);
  const auto [train, test] = split_dataset(ds, 0.8);
  EXPECT_EQ(train.size() + test.size(), ds.size());
  EXPECT_EQ(train.image, ds.image);
  EXPECT_THROW((void)split_dataset(ds, 1.5), Error);
}

TEST(QatCnnTest, LossDecreases) {
  const ImageDataset data = easy_patterns();
  QatCnn cnn(data.image, data.classes, small_config(2, 1));
  const double first = cnn.train_epoch(data);
  double last = first;
  for (int e = 0; e < 12; ++e) last = cnn.train_epoch(data);
  EXPECT_LT(last, first * 0.6);
}

TEST(QatCnnTest, LearnsPatternsAboveChance) {
  const auto [train, test] = split_dataset(easy_patterns(), 0.75);
  QatCnn cnn(train.image, train.classes, small_config(2, 20));
  cnn.fit(train);
  EXPECT_GT(cnn.evaluate(test), 0.7);  // chance = 1/3
}

TEST(QatCnnTest, ExportIsBitExact) {
  const auto [train, test] = split_dataset(easy_patterns(), 0.75);
  const QatCnnResult r =
      train_and_export_cnn(train, test, train.image, small_config(2, 15));
  EXPECT_NEAR(r.exported_accuracy, r.train_accuracy, 0.02);
}

TEST(QatCnnTest, ExportedModelStreamsBitExact) {
  const auto [train, test] = split_dataset(easy_patterns(), 0.75);
  QatCnn cnn(train.image, train.classes, small_config(2, 12));
  cnn.fit(train);
  const auto [pipeline, params] = cnn.export_network();
  StreamEngine engine(pipeline, params);
  const ReferenceExecutor ref(pipeline, params);
  for (int i = 0; i < 8; ++i) {
    const IntTensor& img = test.images[static_cast<std::size_t>(i)];
    EXPECT_EQ(engine.run_one(img), ref.run(img)) << i;
  }
}

TEST(QatCnnTest, TwoBitBeatsOneBitOnImages) {
  // The image-domain counterpart of the paper's AlexNet accuracy claim.
  const auto [train, test] =
      split_dataset(make_pattern_task(4, 12, 12, 1, 60, 7), 0.75);
  QatCnnConfig one;
  one.act_bits = 1;
  one.epochs = 20;
  one.seed = 3;
  QatCnnConfig two = one;
  two.act_bits = 2;
  const double a1 =
      train_and_export_cnn(train, test, train.image, one).exported_accuracy;
  const double a2 =
      train_and_export_cnn(train, test, train.image, two).exported_accuracy;
  EXPECT_GT(a2, a1 + 0.1);
}

TEST(QatCnnTest, ExportedSpecSerializesAndReloads) {
  const auto [train, test] = split_dataset(easy_patterns(), 0.75);
  QatCnn cnn(train.image, train.classes, small_config(2, 10));
  cnn.fit(train);
  const auto [pipeline, params] = cnn.export_network();
  const std::string path = "/tmp/qnn_cnn_roundtrip.qnn";
  save_network(path, cnn.export_spec(), params);
  const LoadedNetwork loaded = load_network(path);
  std::remove(path.c_str());
  const ReferenceExecutor a(pipeline, params);
  const ReferenceExecutor b(loaded.pipeline, loaded.params);
  for (int i = 0; i < 5; ++i) {
    const IntTensor& img = test.images[static_cast<std::size_t>(i)];
    EXPECT_EQ(a.run(img), b.run(img));
  }
}

TEST(QatCnnTest, DeterministicGivenSeed) {
  const auto [train, test] = split_dataset(easy_patterns(), 0.75);
  const QatCnnConfig cfg = small_config(2, 8);
  const auto a = train_and_export_cnn(train, test, train.image, cfg);
  const auto b = train_and_export_cnn(train, test, train.image, cfg);
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
  EXPECT_DOUBLE_EQ(a.exported_accuracy, b.exported_accuracy);
}

TEST(QatCnnTest, RejectsBadInputs) {
  EXPECT_THROW(QatCnn(Shape{}, 3, QatCnnConfig{}), Error);
  EXPECT_THROW(QatCnn(Shape{8, 8, 1}, 1, QatCnnConfig{}), Error);
  QatCnnConfig bad;
  bad.act_bits = 0;
  EXPECT_THROW(QatCnn(Shape{8, 8, 1}, 3, bad), Error);
  QatCnn ok(Shape{8, 8, 1}, 3, small_config());
  const ImageDataset wrong = make_pattern_task(3, 6, 6, 1, 4, 1);
  EXPECT_THROW((void)ok.train_epoch(wrong), Error);
}

}  // namespace
}  // namespace qnn
