# Included by CTest (via TEST_INCLUDE_FILES) after gtest test discovery.
# Re-applies a full multi-element label set to every test discovered from
# one binary: gtest_discover_tests' PROPERTIES forwarding flattens list
# values, so qnn_add_test routes LABELS through here instead.
#
# Inputs (set by the generated <name>_labels.cmake shim):
#   QNN_TESTS_FILE  generated add_test() script of the discovered binary
#   QNN_LABELS      the label list to stamp on each of its tests
if(EXISTS "${QNN_TESTS_FILE}")
  file(STRINGS "${QNN_TESTS_FILE}" qnn_add_test_lines REGEX "^add_test")
  foreach(qnn_line IN LISTS qnn_add_test_lines)
    if(qnn_line MATCHES "^add_test\\(\\[=\\[(.+)\\]=\\]")
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES
        LABELS "${QNN_LABELS}")
    endif()
  endforeach()
endif()
