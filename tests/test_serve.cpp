#include "serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <span>
#include <thread>
#include <vector>

#include "backend/backend.h"
#include "fault/fault.h"
#include "io/synthetic.h"
#include "models/zoo.h"
#include "nn/reference.h"
#include "serve/load_generator.h"
#include "test_util.h"

namespace qnn {
namespace {

struct TinyNet {
  NetworkSpec spec = models::tiny(12, 4, 2);
  Pipeline pipeline = expand(spec);
  NetworkParams params = NetworkParams::random(pipeline, 60);
  SessionConfig session_config = [] {
    SessionConfig cfg;
    cfg.fast_estimate = true;
    return cfg;
  }();

  [[nodiscard]] DfeServer server(ServerConfig cfg) const {
    return DfeServer(spec, params, cfg, session_config);
  }
  [[nodiscard]] ReferenceExecutor reference() const {
    return ReferenceExecutor(pipeline, params);
  }
};

TEST(Serve, RejectsMismatchedParametersWithDiagnosticCode) {
  // The server verifies the graph once up front (verify/graph_check.h):
  // a parameter set that does not match the network must fail with one
  // structured QNN-Dxxx error before any replica is compiled.
  TinyNet net;
  net.params.bnacts.pop_back();
  try {
    DfeServer server(net.spec, net.params, ServerConfig{},
                     net.session_config);
    FAIL() << "server construction over mismatched parameters must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("QNN-D201"), std::string::npos)
        << e.what();
  }
}

TEST(Serve, SubmitMatchesReference) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.replicas = 2;
  cfg.max_batch = 4;
  cfg.batch_timeout_us = 500;
  DfeServer server = net.server(cfg);
  const ReferenceExecutor ref = net.reference();
  Rng rng(61);
  for (int i = 0; i < 6; ++i) {
    const IntTensor img = testutil::random_image(12, 12, 3, rng);
    const InferenceResult res = server.submit(img);
    ASSERT_EQ(res.status, ServerStatus::kOk) << to_string(res.status);
    EXPECT_EQ(res.logits, ref.run(img)) << i;
    EXPECT_GE(res.total_us, 0.0);
  }
  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_EQ(s.submitted, 6u);
  EXPECT_EQ(s.completed, 6u);
  EXPECT_EQ(s.rejected(), 0u);
  EXPECT_GT(s.values_streamed, 0u);
}

// Satellite: results are returned in submission order — every future must
// carry the logits of exactly the image it was submitted with, even when
// 8 client threads race into the micro-batcher.
TEST(Serve, ConcurrentSubmissionOrdering8Threads) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.replicas = 4;
  cfg.max_batch = 8;
  cfg.batch_timeout_us = 1000;
  DfeServer server = net.server(cfg);
  const ReferenceExecutor ref = net.reference();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 8;
  std::vector<std::vector<IntTensor>> images(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(100 + static_cast<std::uint64_t>(t));
    for (int r = 0; r < kPerThread; ++r) {
      images[static_cast<std::size_t>(t)].push_back(
          testutil::random_image(12, 12, 3, rng));
    }
  }
  std::vector<std::vector<std::future<InferenceResult>>> futures(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kPerThread; ++r) {
        futures[static_cast<std::size_t>(t)].push_back(server.submit_async(
            images[static_cast<std::size_t>(t)][static_cast<std::size_t>(r)]));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kPerThread; ++r) {
      InferenceResult res =
          futures[static_cast<std::size_t>(t)][static_cast<std::size_t>(r)]
              .get();
      ASSERT_EQ(res.status, ServerStatus::kOk) << to_string(res.status);
      EXPECT_EQ(res.logits,
                ref.run(images[static_cast<std::size_t>(t)]
                              [static_cast<std::size_t>(r)]))
          << "thread " << t << " request " << r;
    }
  }
  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Serve, DeadlineExpiryRejectsQueuedRequests) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 1;  // no coalescing: queued requests wait a full run each
  cfg.batch_timeout_us = 0;
  DfeServer server = net.server(cfg);
  Rng rng(62);
  const IntTensor img = testutil::random_image(12, 12, 3, rng);

  // Occupy the single replica, then queue requests that can only expire:
  // a 1 us deadline cannot survive a multi-hundred-us inference ahead of it.
  std::future<InferenceResult> first = server.submit_async(img);
  std::vector<std::future<InferenceResult>> rushed;
  for (int i = 0; i < 8; ++i) {
    rushed.push_back(server.submit_async(img, /*deadline_us=*/1));
  }
  EXPECT_EQ(first.get().status, ServerStatus::kOk);
  int expired = 0;
  for (std::future<InferenceResult>& fut : rushed) {
    const InferenceResult res = fut.get();
    EXPECT_TRUE(res.status == ServerStatus::kOk ||
                res.status == ServerStatus::kDeadlineExceeded)
        << to_string(res.status);
    if (res.status == ServerStatus::kDeadlineExceeded) ++expired;
  }
  EXPECT_GE(expired, 1);
  EXPECT_GE(server.metrics().snapshot().rejected_deadline,
            static_cast<std::uint64_t>(expired));
}

TEST(Serve, QueueFullRejectsInsteadOfDeadlocking) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 1;
  cfg.batch_timeout_us = 0;
  cfg.queue_capacity = 2;
  DfeServer server = net.server(cfg);
  Rng rng(63);
  const IntTensor img = testutil::random_image(12, 12, 3, rng);

  constexpr int kBurst = 24;
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    futures.push_back(server.submit_async(img));
  }
  int ok = 0;
  int overloaded = 0;
  for (std::future<InferenceResult>& fut : futures) {
    const InferenceResult res = fut.get();  // must not hang
    if (res.status == ServerStatus::kOk) ++ok;
    if (res.status == ServerStatus::kOverloaded) ++overloaded;
  }
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_GT(overloaded, 0);  // a 2-deep queue cannot absorb a 24 burst
  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_EQ(s.rejected_overload, static_cast<std::uint64_t>(overloaded));
  EXPECT_LE(s.max_queue_depth, cfg.queue_capacity);
}

TEST(Serve, BatchTimeoutFlushesPartialBatch) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 64;           // far more than we submit...
  cfg.batch_timeout_us = 2000;  // ...so only the timeout can close a batch
  DfeServer server = net.server(cfg);
  Rng rng(64);
  const InferenceResult res =
      server.submit(testutil::random_image(12, 12, 3, rng));
  EXPECT_EQ(res.status, ServerStatus::kOk);
  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.batched_requests, 1u);
}

TEST(Serve, MicroBatchingCoalescesBursts) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 8;
  cfg.batch_timeout_us = 200000;  // generous window: the burst must coalesce
  DfeServer server = net.server(cfg);
  Rng rng(65);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(
        server.submit_async(testutil::random_image(12, 12, 3, rng)));
  }
  for (std::future<InferenceResult>& fut : futures) {
    EXPECT_EQ(fut.get().status, ServerStatus::kOk);
  }
  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_EQ(s.batched_requests, 16u);
  EXPECT_LT(s.batches, 16u);  // at least some coalescing happened
  EXPECT_GT(s.mean_batch_size(), 1.0);
}

TEST(Serve, PoissonArrivalsDeterministicUnderSeed) {
  const auto a = poisson_arrivals_us(1000.0, 200, 7);
  const auto b = poisson_arrivals_us(1000.0, 200, 7);
  EXPECT_EQ(a, b);  // bit-identical schedule for one seed
  const auto c = poisson_arrivals_us(1000.0, 200, 8);
  EXPECT_NE(a, c);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_GT(a.front(), 0.0);
  // Mean inter-arrival gap of 200 samples at 1000 qps is 1000 us +- ~7%;
  // a factor-of-two band is far outside any statistical wobble.
  const double mean_gap = a.back() / 200.0;
  EXPECT_GT(mean_gap, 500.0);
  EXPECT_LT(mean_gap, 2000.0);
}

TEST(Serve, CleanShutdownDrainsInFlightRequests) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.replicas = 2;
  cfg.max_batch = 4;
  cfg.batch_timeout_us = 500;
  DfeServer server = net.server(cfg);
  const ReferenceExecutor ref = net.reference();
  Rng rng(66);
  std::vector<IntTensor> images;
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 12; ++i) {
    images.push_back(testutil::random_image(12, 12, 3, rng));
    futures.push_back(server.submit_async(images.back()));
  }
  server.stop();  // must drain, not abandon, the queue
  for (std::size_t i = 0; i < futures.size(); ++i) {
    InferenceResult res = futures[i].get();
    ASSERT_EQ(res.status, ServerStatus::kOk) << to_string(res.status);
    EXPECT_EQ(res.logits, ref.run(images[i]));
  }
  // After stop() new submissions are turned away, and stop is idempotent.
  const InferenceResult late = server.submit(images.front());
  EXPECT_EQ(late.status, ServerStatus::kShutdown);
  server.stop();
  EXPECT_GE(server.metrics().snapshot().rejected_shutdown, 1u);
}

TEST(Serve, LoadGeneratorClosedLoopAccountsEveryRequest) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.replicas = 2;
  cfg.max_batch = 8;
  cfg.batch_timeout_us = 500;
  DfeServer server = net.server(cfg);
  LoadGenerator gen(server, synthetic_batch(4, 12, 12, 3, 67));
  const LoadResult r = gen.closed_loop(/*clients=*/4,
                                       /*requests_per_client=*/8);
  EXPECT_EQ(r.offered, 32u);
  EXPECT_EQ(r.ok, 32u);  // ample queue: closed loop never overloads
  EXPECT_GT(r.achieved_qps, 0.0);
  EXPECT_GT(r.p50_us, 0.0);
  EXPECT_GE(r.p99_us, r.p50_us);
  EXPECT_FALSE(r.str().empty());
}

TEST(Serve, LoadGeneratorOpenLoopAccountsEveryRequest) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.replicas = 2;
  cfg.max_batch = 8;
  cfg.batch_timeout_us = 500;
  DfeServer server = net.server(cfg);
  LoadGenerator gen(server, synthetic_batch(4, 12, 12, 3, 68));
  const LoadResult r =
      gen.open_loop(/*rate_qps=*/2000.0, /*total_requests=*/40, /*seed=*/9);
  EXPECT_EQ(r.offered, 40u);
  EXPECT_EQ(r.ok + r.rejected_overload + r.rejected_deadline +
                r.rejected_shutdown + r.errors,
            40u);
  EXPECT_GT(r.ok, 0u);
}

TEST(Serve, MetricsReportMentionsEverything) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.replicas = 2;
  DfeServer server = net.server(cfg);
  LoadGenerator gen(server, synthetic_batch(2, 12, 12, 3, 69));
  (void)gen.closed_loop(2, 4);
  const std::string report = server.metrics_report();
  EXPECT_NE(report.find("requests:"), std::string::npos);
  EXPECT_NE(report.find("rejected:"), std::string::npos);
  EXPECT_NE(report.find("queue-wait"), std::string::npos);
  EXPECT_NE(report.find("end-to-end"), std::string::npos);
  EXPECT_NE(report.find("p50/p95/p99"), std::string::npos);
  EXPECT_NE(report.find("values streamed"), std::string::npos);
  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_EQ(s.completed, 8u);
  EXPECT_GT(server.metrics().end_to_end().percentile(50), 0.0);
  EXPECT_GE(server.metrics().end_to_end().percentile(99),
            server.metrics().end_to_end().percentile(50));
}

TEST(Serve, ServerValidatesConfigAndInput) {
  const TinyNet net;
  ServerConfig bad;
  bad.replicas = 0;
  EXPECT_THROW((void)net.server(bad), Error);
  DfeServer server = net.server(ServerConfig{});
  EXPECT_EQ(server.replicas(), 1);
  EXPECT_EQ(server.replica(0).spec().name, "tiny_12");
  EXPECT_THROW((void)server.replica(1), Error);
  EXPECT_THROW((void)server.submit(IntTensor(Shape{3, 3, 3})), Error);
}

// ---- mixed pools, deadline routing, shadow serving, restart ------------

TEST(Serve, TightDeadlinesNeverLandOnSlowTier) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.pool = {{"engine", 2}, {"reference", 1}};
  cfg.max_batch = 4;
  cfg.batch_timeout_us = 200;
  cfg.tight_deadline_us = 5'000'000;
  DfeServer server = net.server(cfg);
  ASSERT_EQ(server.replicas(), 3);
  ASSERT_EQ(server.replica(2).backend().tier(), BackendTier::kSlow);
  Rng rng(71);
  std::vector<std::future<InferenceResult>> tight;
  for (int i = 0; i < 24; ++i) {
    tight.push_back(server.submit_async(testutil::random_image(12, 12, 3, rng),
                                        /*deadline_us=*/1'000'000));
  }
  for (std::future<InferenceResult>& fut : tight) {
    const InferenceResult res = fut.get();
    ASSERT_EQ(res.status, ServerStatus::kOk) << to_string(res.status);
    ASSERT_GE(res.replica, 0);
    EXPECT_EQ(server.replica(res.replica).backend().tier(),
              BackendTier::kFast)
        << "tight request served by slow replica " << res.replica;
  }
  // Best-effort traffic may land anywhere, including the slow tier.
  std::vector<std::future<InferenceResult>> loose;
  for (int i = 0; i < 12; ++i) {
    loose.push_back(server.submit_async(
        testutil::random_image(12, 12, 3, rng), /*deadline_us=*/0));
  }
  for (std::future<InferenceResult>& fut : loose) {
    EXPECT_EQ(fut.get().status, ServerStatus::kOk);
  }
  // Satellite: the health table names each replica's backend and tier.
  const std::string report = server.metrics_report();
  EXPECT_NE(report.find("[engine/fast]"), std::string::npos);
  EXPECT_NE(report.find("[reference/slow]"), std::string::npos);
}

TEST(Serve, NaiveRoutingLetsAnyReplicaTakeTightWork) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.pool = {{"engine", 1}, {"reference", 1}};
  cfg.route_by_deadline = false;
  cfg.max_batch = 1;
  cfg.batch_timeout_us = 0;
  cfg.tight_deadline_us = 5'000'000;
  DfeServer server = net.server(cfg);
  Rng rng(72);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(server.submit_async(
        testutil::random_image(12, 12, 3, rng), /*deadline_us=*/2'000'000));
  }
  int on_slow = 0;
  for (std::future<InferenceResult>& fut : futures) {
    const InferenceResult res = fut.get();
    ASSERT_EQ(res.status, ServerStatus::kOk) << to_string(res.status);
    on_slow += server.replica(res.replica).backend().tier() ==
               BackendTier::kSlow;
  }
  // The ablation baseline: without class routing an idle slow replica
  // pulls tight work the moment the queue backs up.
  EXPECT_GE(on_slow, 1);
}

TEST(Serve, ShadowMirrorsAreComparedNeverReturned) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.pool = {{"engine", 1}, {"simulator", 1}};
  cfg.shadow_fraction = 1.0;
  cfg.max_batch = 4;
  cfg.batch_timeout_us = 200;
  DfeServer server = net.server(cfg);
  ASSERT_EQ(server.replicas(), 2);
  ASSERT_EQ(server.replica(1).backend().tier(), BackendTier::kShadow);
  Rng rng(73);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(
        server.submit_async(testutil::random_image(12, 12, 3, rng)));
  }
  for (std::future<InferenceResult>& fut : futures) {
    const InferenceResult res = fut.get();
    ASSERT_EQ(res.status, ServerStatus::kOk) << to_string(res.status);
    EXPECT_NE(res.replica, 1) << "shadow replica returned to a client";
  }
  server.stop();  // drains the shadow queue before joining
  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_EQ(s.shadow_runs + s.shadow_dropped, 10u);
  EXPECT_GT(s.shadow_runs, 0u);
  EXPECT_EQ(s.shadow_mismatches, 0u);  // engine and simulator are bit-exact
  EXPECT_NE(server.metrics_report().find("shadow:"), std::string::npos);
}

TEST(Serve, RepeatedShadowMismatchesQuarantineThePrimary) {
  // A primary that computes WRONG answers is invisible to the failure-streak
  // path — only the shadow tier can see it. Replica 0 silently flips one
  // output bit on every run; the clean shadow replica pins the mismatches on
  // it, and after shadow_mismatch_after of them it is quarantined with a
  // kShadowQuarantine event.
  TinyNet net;
  FaultEvent flip = FaultPlan::bit_flip(
      net.pipeline.node(net.pipeline.size() - 1).name + "->output",
      /*run=*/0, /*value_index=*/0);
  flip.last_run = kFaultNever;  // every run, not just the first
  flip.replica = 0;
  net.session_config.engine.faults.add(flip);

  ServerConfig cfg;
  cfg.pool = {{"engine", 1}, {"simulator", 1}};
  cfg.shadow_fraction = 1.0;
  cfg.shadow_mismatch_after = 3;
  cfg.max_batch = 1;
  cfg.batch_timeout_us = 0;
  DfeServer server = net.server(cfg);
  Rng rng(91);
  for (int i = 0; i < 8; ++i) {
    // Synchronous submits: every mirrored request is enqueued before
    // stop() drains the shadow queue, and no client is left waiting on a
    // quarantined primary.
    (void)server.submit(testutil::random_image(12, 12, 3, rng));
  }
  server.stop();
  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_GE(s.shadow_mismatches, 3u);
  EXPECT_GE(s.quarantines, 1u);
  bool logged = false;
  for (const std::string& event : server.metrics().events()) {
    logged = logged || event.find(kShadowQuarantine) != std::string::npos;
  }
  EXPECT_TRUE(logged) << "quarantine must be attributed to shadow evidence";
}

TEST(Serve, ShadowMismatchEscalationIsOffByDefault) {
  // shadow_mismatch_after = 0 (the default) keeps the old behavior:
  // mismatches are counted and logged, never escalated.
  TinyNet net;
  FaultEvent flip = FaultPlan::bit_flip(
      net.pipeline.node(net.pipeline.size() - 1).name + "->output",
      /*run=*/0, /*value_index=*/0);
  flip.last_run = kFaultNever;
  flip.replica = 0;
  net.session_config.engine.faults.add(flip);

  ServerConfig cfg;
  cfg.pool = {{"engine", 1}, {"simulator", 1}};
  cfg.shadow_fraction = 1.0;
  cfg.max_batch = 1;
  cfg.batch_timeout_us = 0;
  DfeServer server = net.server(cfg);
  Rng rng(92);
  for (int i = 0; i < 6; ++i) {
    (void)server.submit(testutil::random_image(12, 12, 3, rng));
  }
  server.stop();
  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_GT(s.shadow_mismatches, 0u);
  EXPECT_EQ(s.quarantines, 0u);
}

TEST(Serve, StopDrainsMixedPoolWithClassGates) {
  const TinyNet net;
  ServerConfig cfg;
  cfg.pool = {{"engine", 1}, {"reference", 1}};
  cfg.max_batch = 2;
  cfg.batch_timeout_us = 0;
  cfg.tight_deadline_us = 10'000'000;
  DfeServer server = net.server(cfg);
  Rng rng(74);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 12; ++i) {
    // Alternate tight and best-effort so the drain interleaves entries the
    // slow replica may and may not take — the gate holds during shutdown,
    // yet every future must still be fulfilled.
    futures.push_back(server.submit_async(
        testutil::random_image(12, 12, 3, rng),
        i % 2 == 0 ? 5'000'000 : 0));
  }
  server.stop();
  for (std::future<InferenceResult>& fut : futures) {
    EXPECT_EQ(fut.get().status, ServerStatus::kOk);
  }
}

TEST(Serve, MixedPoolConfigValidation) {
  const TinyNet net;
  ServerConfig unknown;
  unknown.pool = {{"no-such-backend", 1}};
  EXPECT_THROW((void)net.server(unknown), Error);
  ServerConfig shadow_only;
  shadow_only.pool = {{"simulator", 1}};
  EXPECT_THROW((void)net.server(shadow_only), Error);
  ServerConfig no_fast;
  no_fast.pool = {{"reference", 1}};
  EXPECT_THROW((void)net.server(no_fast), Error)
      << "deadline routing without a fast tier strands tight requests";
  no_fast.route_by_deadline = false;
  DfeServer ok = net.server(no_fast);  // naive slow-only pool is legal
  Rng rng(75);
  EXPECT_EQ(ok.submit(testutil::random_image(12, 12, 3, rng)).status,
            ServerStatus::kOk);
  ServerConfig unmirrorable;
  unmirrorable.shadow_fraction = 0.5;  // no shadow replica to mirror to
  EXPECT_THROW((void)net.server(unmirrorable), Error);
}

// A fast-tier backend whose first kBrokenSessions compiled sessions fail
// every run — including quarantine probes — while later sessions execute
// the scalar reference. Healing therefore *requires* the watchdog restart
// path: probes alone can never readmit a wedged session.
constexpr int kBrokenSessions = 2;
std::atomic<int> g_flaky_compiles{0};

class FlakySession final : public BackendSession {
 public:
  FlakySession(const Backend& owner, Pipeline pipeline, NetworkParams params,
               bool broken)
      : owner_(owner),
        pipeline_(std::move(pipeline)),
        params_(std::move(params)),
        ref_(pipeline_, params_),
        broken_(broken) {}

  [[nodiscard]] std::vector<IntTensor> infer_batch(
      std::span<const IntTensor> images,
      StreamEngine::RunStats* stats) override {
    if (broken_) throw Error("flaky session: wedged board");
    if (stats != nullptr) *stats = StreamEngine::RunStats{};
    std::vector<IntTensor> out;
    out.reserve(images.size());
    for (const IntTensor& img : images) out.push_back(ref_.run(img));
    return out;
  }
  void cancel() override {}
  [[nodiscard]] const Pipeline& pipeline() const override {
    return pipeline_;
  }
  [[nodiscard]] const NetworkParams& params() const override {
    return params_;
  }
  [[nodiscard]] const Backend& backend() const override { return owner_; }

 private:
  const Backend& owner_;
  Pipeline pipeline_;
  NetworkParams params_;
  ReferenceExecutor ref_;
  bool broken_;
};

class FlakyBackend final : public Backend {
 public:
  [[nodiscard]] const BackendInfo& info() const override {
    static const BackendInfo kInfo{"flaky", BackendTier::kFast,
                                   "test-only: first sessions always fail",
                                   1.0, 8};
    return kInfo;
  }
  [[nodiscard]] bool supports_op(const Node&) const override { return true; }
  [[nodiscard]] std::unique_ptr<BackendSession> compile(
      const Pipeline& pipeline, NetworkParams params,
      const EngineOptions&) const override {
    const int id = g_flaky_compiles.fetch_add(1);
    return std::make_unique<FlakySession>(*this, pipeline, std::move(params),
                                          id < kBrokenSessions);
  }
};

TEST(Serve, WatchdogRestartRecompilesWedgedReplica) {
  static const Backend& flaky =
      backend_registry().register_backend(std::make_unique<FlakyBackend>());
  (void)flaky;
  const TinyNet net;
  ServerConfig cfg;
  cfg.pool = {{"flaky", 1}};
  cfg.max_batch = 2;
  cfg.batch_timeout_us = 0;
  cfg.max_retries = 4;
  cfg.quarantine_after = 1;
  cfg.probation_probes = 1;
  cfg.probe_period_us = 500;
  cfg.restart_after = 2;
  DfeServer server = net.server(cfg);
  const ReferenceExecutor ref = net.reference();
  Rng rng(76);
  std::vector<IntTensor> images;
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 4; ++i) {
    images.push_back(testutil::random_image(12, 12, 3, rng));
    futures.push_back(server.submit_async(images.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "self-healing stalled on request " << i;
    const InferenceResult res = futures[i].get();
    ASSERT_EQ(res.status, ServerStatus::kOk) << to_string(res.status);
    EXPECT_EQ(res.logits, ref.run(images[i]));
  }
  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_EQ(s.replica_restarts, 2u);  // both wedged sessions recompiled
  EXPECT_GE(s.readmissions, 1u);
  bool restart_logged = false;
  for (const std::string& e : server.metrics().events()) {
    restart_logged |= e.find(kReplicaRestarted) != std::string::npos;
  }
  EXPECT_TRUE(restart_logged);
  EXPECT_NE(server.metrics_report().find("[flaky/fast]"), std::string::npos);
  EXPECT_EQ(server.replica_health(0), ReplicaHealth::kHealthy);
}

TEST(Serve, LatencyHistogramPercentiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(50), 0.0);  // empty
  for (int i = 0; i < 90; ++i) h.record(100.0);   // bucket [64, 128)
  for (int i = 0; i < 10; ++i) h.record(5000.0);  // bucket [4096, 8192)
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(50), 128.0);
  EXPECT_EQ(h.percentile(90), 128.0);
  EXPECT_EQ(h.percentile(99), 8192.0);
  EXPECT_NEAR(h.mean_us(), 0.9 * 100 + 0.1 * 5000, 1.0);
  EXPECT_NE(h.summary().find("p50/p95/p99"), std::string::npos);
}

TEST(Serve, RetryBackoffJitterSpreadsUnderAFixedSeed) {
  ServerConfig cfg;
  cfg.retry_backoff_us = 400;
  ASSERT_TRUE(cfg.retry_jitter);  // the default
  Rng rng(cfg.retry_jitter_seed);
  std::vector<std::int64_t> delays;
  for (int draw = 0; draw < 24; ++draw) {
    const std::int64_t d = retry_backoff_delay_us(cfg, /*attempt=*/1, rng);
    // Every delay lands inside +-50% of the exponential base...
    EXPECT_GE(d, 200);
    EXPECT_LE(d, 600);
    delays.push_back(d);
  }
  // ...but a burst of requests failed together does NOT retry in lockstep.
  std::sort(delays.begin(), delays.end());
  const std::size_t distinct = static_cast<std::size_t>(
      std::unique(delays.begin(), delays.end()) - delays.begin());
  EXPECT_GE(distinct, 8u) << "24 draws should spread over the jitter window";

  // The exponential schedule still scales the window per attempt.
  for (int attempt = 2; attempt <= 4; ++attempt) {
    const std::int64_t base = cfg.retry_backoff_us << (attempt - 1);
    const std::int64_t d = retry_backoff_delay_us(cfg, attempt, rng);
    EXPECT_GE(d, base / 2);
    EXPECT_LE(d, base + base / 2);
  }

  // Same seed => the same delay sequence, replayable in a regression.
  Rng a(7);
  Rng b(7);
  for (int draw = 0; draw < 8; ++draw) {
    EXPECT_EQ(retry_backoff_delay_us(cfg, 1, a),
              retry_backoff_delay_us(cfg, 1, b));
  }

  // Jitter off: the exact legacy schedule.
  cfg.retry_jitter = false;
  EXPECT_EQ(retry_backoff_delay_us(cfg, 1, rng), 400);
  EXPECT_EQ(retry_backoff_delay_us(cfg, 3, rng), 1600);
}

TEST(Serve, EventTimelineRingKeepsTheNewestEvents) {
  ServerMetrics m;
  for (int i = 0; i < 300; ++i) {
    m.log_event("event " + std::to_string(i));
  }
  const std::vector<std::string> events = m.events();
  // 256 ring slots plus the trailing drop marker.
  ASSERT_EQ(events.size(), 257u);
  // The ring overwrote the OLDEST 44 lines: the survivors are 44..299,
  // oldest first, and the newest event is always present.
  EXPECT_NE(events.front().find("event 44"), std::string::npos)
      << events.front();
  EXPECT_NE(events[255].find("event 299"), std::string::npos) << events[255];
  EXPECT_NE(events.back().find("44 older events dropped"), std::string::npos)
      << events.back();
  EXPECT_EQ(m.snapshot().events_dropped, 44u);
}

}  // namespace
}  // namespace qnn
