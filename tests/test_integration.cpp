// Cross-module integration tests: full flows through spec -> pipeline ->
// parameters -> {reference executor, streaming engine, cycle simulator,
// resource model, partitioner, performance models}, plus the trained-model
// deployment path.
#include <gtest/gtest.h>

#include <cstdio>

#include "dataflow/engine.h"
#include "io/ppm.h"
#include "io/synthetic.h"
#include "models/zoo.h"
#include "nn/reference.h"
#include "perfmodel/fpga_estimate.h"
#include "perfmodel/gpu_model.h"
#include "train/qat.h"

namespace qnn {
namespace {

TEST(Integration, FullStackAgreementOnVgg) {
  // One network, four viewpoints: float-path reference, threshold-path
  // reference, threaded streaming engine — all bit-identical outputs.
  const Pipeline p = expand(models::vgg_like(16, 10, 2));
  const NetworkParams params = NetworkParams::random(p, 404);
  const ReferenceExecutor hw(p, params, BnActMode::Threshold);
  const ReferenceExecutor fl(p, params, BnActMode::FloatPath);
  StreamEngine engine(p, params);
  const auto batch = synthetic_batch(3, 16, 16, 3, 11);
  const auto streamed = engine.run(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const IntTensor a = hw.run(batch[i]);
    EXPECT_EQ(a, fl.run(batch[i])) << i;
    EXPECT_EQ(a, streamed[i]) << i;
  }
}

TEST(Integration, AlexNetSmallStreamsBitExact) {
  // Exercises the dense chain (full-spatial convolutions) end to end.
  const Pipeline p = expand(models::alexnet(63, 20, 2));
  const NetworkParams params = NetworkParams::random(p, 405);
  StreamEngine engine(p, params);
  const ReferenceExecutor ref(p, params);
  Rng rng(12);
  const IntTensor img = synthetic_image(63, 63, 3, rng);
  EXPECT_EQ(engine.run_one(img), ref.run(img));
}

TEST(Integration, EstimatesAreMutuallyConsistent) {
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  const auto fpga = estimate_fpga(p, {}, {}, max4_maia(), false);
  const auto resources = estimate_resources(p);
  // The partitioner can never beat the resource lower bound.
  EXPECT_GE(fpga.num_dfes, resources.devices_needed(stratix_v_5sgsd8()));
  // Throughput identities.
  EXPECT_NEAR(fpga.images_per_second * fpga.seconds_per_image, 1.0, 1e-9);
  EXPECT_NEAR(fpga.energy_per_image_j,
              fpga.power_w * fpga.seconds_per_image, 1e-12);
  // Partition segments carry exactly the total resources.
  double luts = 0.0;
  for (const auto& d : fpga.partition.dfes) luts += d.luts;
  EXPECT_NEAR(luts, resources.luts, 1.0);
}

TEST(Integration, TrainedModelSurvivesWholeToolchain) {
  const auto all = make_cluster_task(3, 8, 60, 12.0, 33);
  const auto [train, test] = split_dataset(all, 0.75);
  QatConfig cfg;
  cfg.epochs = 30;
  cfg.seed = 3;
  QatMlp mlp(train.dim, train.classes, cfg);
  mlp.fit(train);
  const auto [pipeline, params] = mlp.export_network();

  // It partitions (trivially), simulates, and streams.
  const auto est = estimate_fpga(pipeline);
  EXPECT_EQ(est.num_dfes, 1);
  EXPECT_GT(est.images_per_second, 60.0);

  StreamEngine engine(pipeline, params);
  const ReferenceExecutor ref(pipeline, params);
  int agree = 0;
  for (int i = 0; i < 20; ++i) {
    const IntTensor& img = test.images[static_cast<std::size_t>(i)];
    agree += engine.run_one(img) == ref.run(img);
  }
  EXPECT_EQ(agree, 20);
}

TEST(Integration, PpmRoundTripPreservesClassification) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const NetworkParams params = NetworkParams::random(p, 77);
  const ReferenceExecutor ref(p, params);
  Rng rng(14);
  const IntTensor img = synthetic_image(12, 12, 3, rng);
  const std::string path = "/tmp/qnn_integration.ppm";
  write_ppm(path, img);
  const IntTensor back = read_ppm(path);
  std::remove(path.c_str());
  EXPECT_EQ(ref.run(back), ref.run(img));
}

TEST(Integration, GpuAndFpgaModelsCoverAllPaperWorkloads) {
  // Fig 5/7/8 harness precondition: every paper workload must be
  // expandable, partitionable and estimable on both platforms.
  for (const auto& spec :
       {models::vgg_like(32, 10, 2), models::vgg_like(96, 10, 2),
        models::vgg_like(144, 10, 2), models::alexnet(224, 1000, 2),
        models::resnet18(224, 1000, 2)}) {
    const Pipeline p = expand(spec);
    const auto fpga = estimate_fpga(p, {}, {}, max4_maia(), false);
    EXPECT_GT(fpga.images_per_second, 0.0) << spec.name;
    for (const auto& gpu : {tesla_p100(), gtx1080()}) {
      const auto est = estimate_gpu(p, gpu);
      EXPECT_GT(est.seconds_per_image, 0.0) << spec.name << " " << gpu.name;
      EXPECT_GT(est.energy_per_image_j, 0.0);
    }
  }
}

TEST(Integration, SimulatorTracksEngineWorkloadExactly) {
  // The cycle simulator and the threaded engine must agree on the number
  // of output transactions each kernel produces (same dataflow, two
  // implementations).
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const NetworkParams params = NetworkParams::random(p, 55);
  StreamEngine engine(p, params);
  Rng rng(16);
  (void)engine.run_one(synthetic_image(12, 12, 3, rng));

  const SimResult sim = simulate(p, {}, 2);
  // Engine traffic counts values; sim counts pixels. Compare per node.
  for (int i = 0; i < p.size(); ++i) {
    const Node& n = p.node(i);
    const auto out_pixels =
        static_cast<std::uint64_t>(n.out.h) * n.out.w;
    for (const auto& k : sim.kernels) {
      if (k.name != n.name) continue;
      EXPECT_EQ(k.outputs, out_pixels * 2) << n.name;  // 2 simulated images
    }
    const auto out_values = static_cast<std::uint64_t>(n.out.elems());
    for (const auto& [stream, pushed] : engine.stream_traffic()) {
      if (stream.rfind(n.name + "->", 0) == 0 ||
          stream.rfind(n.name + "=>", 0) == 0) {
        EXPECT_EQ(pushed, out_values) << stream;  // 1 streamed image
        break;
      }
    }
  }
}

}  // namespace
}  // namespace qnn
