#include "nn/pipeline.h"

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace qnn {
namespace {

TEST(PreactBits, Widths) {
  // 1-bit codes over a 9-value window: |sum| <= 9 -> 5 signed bits.
  EXPECT_EQ(preact_bits(9, 1), 5);
  // ResNet body conv: 3*3*512 window of 2-bit codes, |sum| <= 13824.
  EXPECT_EQ(preact_bits(3 * 3 * 512, 2), 15);
  // First layer: 7*7*3 window of 8-bit pixels, |sum| <= 37485 -> 17 bits.
  EXPECT_EQ(preact_bits(7 * 7 * 3, 8), 17);
}

TEST(Pipeline, SimpleChainShapes) {
  NetworkSpec spec;
  spec.input = Shape{8, 8, 3};
  spec.conv(4, 3, 1, 1).max_pool(2, 2).dense(10, false);
  const Pipeline p = expand(spec);
  ASSERT_EQ(p.size(), 4);  // conv, bnact, pool, dense-conv
  EXPECT_EQ(p.node(0).kind, NodeKind::Conv);
  EXPECT_EQ(p.node(0).out, (Shape{8, 8, 4}));
  EXPECT_EQ(p.node(1).kind, NodeKind::BnAct);
  EXPECT_EQ(p.node(1).out_bits, 2);
  EXPECT_EQ(p.node(2).kind, NodeKind::MaxPool);
  EXPECT_EQ(p.node(2).out, (Shape{4, 4, 4}));
  EXPECT_EQ(p.node(3).kind, NodeKind::Conv);
  EXPECT_EQ(p.node(3).k, 4);  // dense lowered to full-spatial conv
  EXPECT_EQ(p.node(3).out, (Shape{1, 1, 10}));
  EXPECT_EQ(p.num_conv_params, 2);
  EXPECT_EQ(p.num_bnact_params, 1);
}

TEST(Pipeline, ResidualIdentityBlock) {
  NetworkSpec spec;
  spec.input = Shape{8, 8, 4};
  spec.input_bits = 2;
  spec.conv(4, 3, 1, 1);        // conv + bnact -> codes, 4 channels
  spec.residual(4, 1);          // identity skip
  const Pipeline p = expand(spec);
  // conv, bnact, convA, bnact, convB, add
  ASSERT_EQ(p.size(), 6);
  const Node& add = p.node(5);
  EXPECT_EQ(add.kind, NodeKind::Add);
  EXPECT_EQ(add.main_from, 4);
  EXPECT_EQ(add.skip_from, 1);  // taps the codes entering the block
  EXPECT_EQ(add.out, (Shape{8, 8, 4}));
}

TEST(Pipeline, ResidualDownsampleUsesProjection) {
  NetworkSpec spec;
  spec.input = Shape{8, 8, 4};
  spec.conv(4, 3, 1, 1);
  spec.residual(8, 2);  // downsampling block
  const Pipeline p = expand(spec);
  // conv, bnact, proj-conv, convA, bnact, convB, add
  ASSERT_EQ(p.size(), 7);
  const Node& proj = p.node(2);
  EXPECT_EQ(proj.kind, NodeKind::Conv);
  EXPECT_EQ(proj.k, 1);
  EXPECT_EQ(proj.stride, 2);
  EXPECT_EQ(proj.out, (Shape{4, 4, 8}));
  const Node& add = p.node(6);
  EXPECT_EQ(add.skip_from, 2);
  EXPECT_EQ(add.out, (Shape{4, 4, 8}));
}

TEST(Pipeline, ConsecutiveResidualsTapPreactivation) {
  NetworkSpec spec;
  spec.input = Shape{8, 8, 4};
  spec.conv(4, 3, 1, 1);
  spec.residual(4, 1).residual(4, 1);
  const Pipeline p = expand(spec);
  // conv bnact | convA bnact convB add | bnact convA bnact convB add
  ASSERT_EQ(p.size(), 11);
  const Node& add1 = p.node(5);
  const Node& add2 = p.node(10);
  ASSERT_EQ(add1.kind, NodeKind::Add);
  ASSERT_EQ(add2.kind, NodeKind::Add);
  // Second block's skip taps the first Add's 16-bit output, not the codes:
  // "skip connections ... accumulate non-quantized outputs" (§III-B5).
  EXPECT_EQ(add2.skip_from, 5);
  EXPECT_GT(add2.out_bits, add1.out_bits);
}

TEST(Pipeline, CarryIsQuantizedBeforePooling) {
  NetworkSpec spec;
  spec.input = Shape{8, 8, 4};
  spec.conv(4, 3, 1, 1);
  spec.residual(4, 1);
  spec.avg_pool_global();
  spec.dense(3, false);
  const Pipeline p = expand(spec);
  // ... add, bnact, avgpool, dense-conv
  const Node& last_add = p.node(5);
  EXPECT_EQ(last_add.kind, NodeKind::Add);
  EXPECT_EQ(p.node(6).kind, NodeKind::BnAct);
  EXPECT_EQ(p.node(7).kind, NodeKind::AvgPool);
  EXPECT_EQ(p.node(7).out, (Shape{1, 1, 4}));
  EXPECT_EQ(p.node(8).out, (Shape{1, 1, 3}));
}

TEST(Pipeline, AvgPoolWidthGrowsWithWindow) {
  NetworkSpec spec;
  spec.input = Shape{7, 7, 4};
  spec.input_bits = 2;
  spec.avg_pool_global();
  const Pipeline p = expand(spec);
  // Sum of 49 2-bit codes: max 147 -> 8 unsigned bits.
  EXPECT_EQ(p.node(0).out_bits, 8);
}

TEST(Pipeline, ValidateCatchesBrokenEdges) {
  NetworkSpec spec;
  spec.input = Shape{8, 8, 3};
  spec.conv(4, 3, 1, 1);
  Pipeline p = expand(spec);
  p.nodes[1].main_from = 5;  // forward reference
  EXPECT_THROW(p.validate(), Error);
}

TEST(Pipeline, ConsumersListsMainAndSkipEdges) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  bool found_fanout = false;
  for (int i = 0; i < p.size(); ++i) {
    if (p.consumers(i).size() > 1) found_fanout = true;
  }
  EXPECT_TRUE(found_fanout) << "tiny model must contain a skip fan-out";
}

TEST(Pipeline, TotalWeightBits) {
  NetworkSpec spec;
  spec.input = Shape{8, 8, 3};
  spec.conv(4, 3, 1, 1).dense(10, false);
  const Pipeline p = expand(spec);
  EXPECT_EQ(p.total_weight_bits(), 3 * 3 * 3 * 4 + 8 * 8 * 4 * 10);
}

}  // namespace
}  // namespace qnn
