#include "partition/partitioner.h"

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace qnn {
namespace {

TEST(CrossingStreams, CountsMainAndSkipEdges) {
  NetworkSpec spec;
  spec.input = Shape{8, 8, 3};
  spec.conv(4, 3, 1, 1);
  spec.residual(4, 1);
  const Pipeline p = expand(spec);
  // Cut inside the residual block: both the regular stream and the skip
  // stream cross the link (§III-B6 applies to both).
  const Node& add = p.node(p.size() - 1);
  const int mid = add.main_from;  // cut right before the final conv's add
  const auto streams = crossing_streams(p, mid - 1);
  EXPECT_GE(streams.size(), 2u);
}

TEST(CrossingStreams, ChainCutCrossesExactlyOneStream) {
  NetworkSpec spec;
  spec.input = Shape{8, 8, 3};
  spec.conv(4, 3, 1, 1).conv(4, 3, 1, 1).dense(10, false);
  const Pipeline p = expand(spec);
  for (int i = 0; i + 1 < p.size(); ++i) {
    EXPECT_EQ(crossing_streams(p, i).size(), 1u) << "cut after " << i;
  }
}

TEST(CrossingStreams, PaperLinkArithmetic) {
  // §III-B6: a 2-bit stream at one value per 105 MHz clock needs 210 Mbps.
  CrossingStream s{"x", 105'000'000, 2};
  EXPECT_NEAR(s.mbps(1.0), 210.0, 1e-6);
}

TEST(CrossingStreams, WireRateDegeneratesToPayloadWithoutPlan) {
  CrossingStream s{"x", 100, 2};  // burst defaults to 0: no plan carried
  EXPECT_DOUBLE_EQ(s.wire_mbps(1e6, 38), s.mbps(1e6));
}

TEST(CrossingStreams, FramedWireRatePaysRoundingOncePerFrame) {
  CrossingStream s{"x", 100, 2, /*burst=*/19};
  // A 19-value frame is 38 bits = exactly one link word; 5 full frames
  // cover 95 values and the 5-value remainder frame rounds 10 bits up to
  // one more word: 6 * 38 = 228 wire bits for a 200-bit payload.
  EXPECT_DOUBLE_EQ(s.mbps(1e6), 200.0);
  EXPECT_DOUBLE_EQ(s.wire_mbps(1e6, 38), 228.0);
  // Per-value framing (burst 1) wastes a whole word per value — exactly
  // the serialization the FIFO plan's burst exists to amortize.
  s.burst = 1;
  EXPECT_DOUBLE_EQ(s.wire_mbps(1e6, 38), 3800.0);
}

TEST(CrossingStreams, AnnotatesPlannedBurstFromConfig) {
  NetworkSpec spec;
  spec.input = Shape{8, 8, 3};
  spec.conv(4, 3, 1, 1).conv(4, 3, 1, 1).dense(10, false);
  const Pipeline p = expand(spec);
  const std::vector<SimConfig::EdgeBurst> bursts = {
      {/*consumer=*/2, /*to_skip_port=*/false, /*values=*/64}};
  const auto planned = crossing_streams(p, 1, &bursts);
  ASSERT_EQ(planned.size(), 1u);
  EXPECT_EQ(planned[0].burst, 64u);
  // No entry for this edge: the stream stays unplanned (legacy pricing).
  const auto unplanned = crossing_streams(p, 0, &bursts);
  ASSERT_EQ(unplanned.size(), 1u);
  EXPECT_EQ(unplanned[0].burst, 0u);
}

TEST(Partition, VggFitsSingleDfe) {
  for (int size : {32, 96, 144}) {
    const auto r = partition_optimal(expand(models::vgg_like(size, 10, 2)));
    EXPECT_EQ(r.num_dfes(), 1) << size;
    EXPECT_TRUE(r.feasible());
    EXPECT_TRUE(r.cuts.empty());
  }
}

TEST(Partition, ResNetSplitsAcrossThreeDfes) {
  // §IV-B2: ResNet-18 is divided into three DFEs.
  const auto r = partition_optimal(expand(models::resnet18(224, 1000, 2)));
  EXPECT_EQ(r.num_dfes(), 3);
  EXPECT_TRUE(r.feasible());
}

TEST(Partition, AlexNetSplitsAcrossMultipleDfes) {
  const auto r = partition_optimal(expand(models::alexnet(224, 1000, 2)));
  EXPECT_GE(r.num_dfes(), 2);
  EXPECT_LE(r.num_dfes(), 3);  // the paper used three
  EXPECT_TRUE(r.feasible());
}

TEST(Partition, LinkNeverThrottlesPaperWorkloads) {
  // "the workload can be divided into multiple DFEs with very small
  // performance degradation" — every cut's bandwidth fits the MaxRing.
  for (const auto& spec : {models::resnet18(224, 1000, 2),
                           models::alexnet(224, 1000, 2)}) {
    const auto r = partition_optimal(expand(spec));
    EXPECT_DOUBLE_EQ(r.link_slowdown, 1.0) << spec.name;
    for (const auto& c : r.cuts) {
      EXPECT_LT(c.required_mbps, 1000.0) << spec.name;  // << multi-Gbps
    }
  }
}

TEST(Partition, SegmentsAreContiguousAndCoverPipeline) {
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  for (const auto& r : {partition(p), partition_optimal(p)}) {
    ASSERT_FALSE(r.dfes.empty());
    EXPECT_EQ(r.dfes.front().first_node, 0);
    EXPECT_EQ(r.dfes.back().last_node, p.size() - 1);
    for (std::size_t k = 0; k + 1 < r.dfes.size(); ++k) {
      EXPECT_EQ(r.dfes[k].last_node + 1, r.dfes[k + 1].first_node);
      EXPECT_EQ(r.cuts[k].after_node, r.dfes[k].last_node);
    }
    for (const auto& d : r.dfes) {
      EXPECT_LE(d.first_node, d.last_node);
      EXPECT_LE(d.utilization, 0.85 + 1e-9);
    }
  }
}

TEST(Partition, OptimalNeverWorseThanGreedy) {
  for (const auto& spec : {models::resnet18(224, 1000, 2),
                           models::alexnet(224, 1000, 2),
                           models::vgg_like(144, 10, 2)}) {
    const Pipeline p = expand(spec);
    EXPECT_LE(partition_optimal(p).num_dfes(), partition(p).num_dfes())
        << spec.name;
  }
}

TEST(Partition, OptimalBalancesUtilization) {
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  const auto opt = partition_optimal(p);
  const auto greedy = partition(p);
  if (opt.num_dfes() == greedy.num_dfes()) {
    EXPECT_LE(opt.max_utilization(), greedy.max_utilization() + 1e-9);
  }
}

TEST(Partition, TightFillForcesMoreDfes) {
  PartitionConfig loose;
  PartitionConfig tight;
  tight.fill = 0.35;
  const Pipeline p = expand(models::alexnet(224, 1000, 2));
  EXPECT_GT(partition_optimal(p, tight).num_dfes(),
            partition_optimal(p, loose).num_dfes() - 1);
  EXPECT_GE(partition_optimal(p, tight).num_dfes(),
            partition_optimal(p, loose).num_dfes());
}

TEST(Partition, RespectsMaxDfes) {
  PartitionConfig cfg;
  cfg.fill = 0.10;
  cfg.max_dfes = 2;
  EXPECT_THROW(
      (void)partition_optimal(expand(models::resnet18(224, 1000, 2)), cfg),
      Error);
}

TEST(Partition, FpsComesFromBottleneckAnalysis) {
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  const auto r = partition_optimal(p);
  const double expect =
      105e6 / static_cast<double>(analytic_bottleneck_cycles(p));
  EXPECT_NEAR(r.images_per_second, expect, 1e-6);
}

}  // namespace
}  // namespace qnn
