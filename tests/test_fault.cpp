// Deterministic fault injection (fault/) and the serving stack's healing
// response (serve/): every failure mode the paper's platform meets as a
// flaky outage — wedged FIFO, crashed board, corrupted MaxRing — becomes
// a seeded, replayable test here.
#include "fault/fault.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "dataflow/engine.h"
#include "dataflow/link.h"
#include "dataflow/linked_engine.h"
#include "fault/apply.h"
#include "models/zoo.h"
#include "nn/reference.h"
#include "partition/partitioner.h"
#include "serve/server.h"
#include "sim/cycle_model.h"
#include "test_util.h"
#include "verify/graph_check.h"

namespace qnn {
namespace {

struct TinyNet {
  NetworkSpec spec = models::tiny(12, 4, 2);
  Pipeline pipeline = expand(spec);
  NetworkParams params = NetworkParams::random(pipeline, 60);
  SessionConfig session_config = [] {
    SessionConfig cfg;
    cfg.fast_estimate = true;
    return cfg;
  }();

  [[nodiscard]] std::string output_stream() const {
    return pipeline.node(pipeline.size() - 1).name + "->output";
  }
  [[nodiscard]] std::vector<IntTensor> batch(int n, std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<IntTensor> images;
    images.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      images.push_back(testutil::random_image(12, 12, 3, rng));
    }
    return images;
  }
  [[nodiscard]] ReferenceExecutor reference() const {
    return ReferenceExecutor(pipeline, params);
  }
};

// ---- the fault plan itself ------------------------------------------------

TEST(Fault, ChaosPlansAreSeedDeterministic) {
  FaultPlan::ChaosOptions opts;
  opts.replicas = 4;
  opts.runs = 32;
  opts.events = 12;
  const FaultPlan a = FaultPlan::chaos(7, opts);
  const FaultPlan b = FaultPlan::chaos(7, opts);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.events.size(), 12u);
  bool any_difference_from_reseed = false;
  const FaultPlan c = FaultPlan::chaos(8, opts);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_EQ(a.events[i].target_index, b.events[i].target_index) << i;
    EXPECT_EQ(a.events[i].replica, b.events[i].replica) << i;
    EXPECT_EQ(a.events[i].first_run, b.events[i].first_run) << i;
    EXPECT_EQ(a.events[i].after_steps, b.events[i].after_steps) << i;
    EXPECT_EQ(a.events[i].after_values, b.events[i].after_values) << i;
    if (a.events[i].kind != c.events[i].kind ||
        a.events[i].target_index != c.events[i].target_index ||
        a.events[i].first_run != c.events[i].first_run) {
      any_difference_from_reseed = true;
    }
    // Default chaos draws only *detectable* kinds, so soak tests can
    // assert bit-exactness of every run that completed.
    EXPECT_NE(a.events[i].kind, FaultKind::kStreamBitFlip) << i;
  }
  EXPECT_TRUE(any_difference_from_reseed);
}

TEST(Fault, EventRunWindowAndReplicaFilter) {
  FaultEvent e = FaultPlan::replica_crash(2, 3, 5);
  EXPECT_TRUE(e.matches(2, 3));
  EXPECT_TRUE(e.matches(2, 5));
  EXPECT_FALSE(e.matches(2, 6));
  EXPECT_FALSE(e.matches(1, 4));
  e.replica = -1;  // wildcard matches every replica
  EXPECT_TRUE(e.matches(7, 4));
}

// ---- engine-level injection ----------------------------------------------

TEST(Fault, StreamBitFlipCorruptsExactlyOneRunDeterministically) {
  const TinyNet net;
  const ReferenceExecutor ref = net.reference();
  const std::vector<IntTensor> batch = net.batch(3, 70);

  EngineOptions opt;
  opt.faults.add(FaultPlan::bit_flip(net.output_stream(), /*run=*/0,
                                     /*value_index=*/5, /*mask=*/1));
  StreamEngine engine(net.pipeline, net.params, opt);
  StreamEngine::RunStats stats;
  const std::vector<IntTensor> faulted = engine.run(batch, &stats);
  EXPECT_EQ(stats.faults_injected, 1u);

  // Silent corruption: the run completes but the logits differ from the
  // golden reference in exactly the flipped value.
  int mismatched_values = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const IntTensor golden = ref.run(batch[i]);
    for (std::int64_t v = 0; v < golden.size(); ++v) {
      mismatched_values += faulted[i][v] != golden[v];
    }
  }
  EXPECT_EQ(mismatched_values, 1);

  // Same plan, fresh engine: the identical corrupted output (determinism).
  StreamEngine replay(net.pipeline, net.params, opt);
  EXPECT_EQ(replay.run(batch), faulted);

  // Run 1 is outside the event window: the engine heals to bit-exact.
  const std::vector<IntTensor> clean = engine.run(batch, &stats);
  EXPECT_EQ(stats.faults_injected, 0u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(clean[i], ref.run(batch[i])) << i;
  }
}

TEST(Fault, StreamStallDelaysButDoesNotCorrupt) {
  const TinyNet net;
  const ReferenceExecutor ref = net.reference();
  const std::vector<IntTensor> batch = net.batch(2, 71);
  EngineOptions opt;
  opt.faults.add(FaultPlan::stall(net.output_stream(), /*run=*/0,
                                  /*value_index=*/2, /*attempts=*/300));
  StreamEngine engine(net.pipeline, net.params, opt);
  StreamEngine::RunStats stats;
  const std::vector<IntTensor> outs = engine.run(batch, &stats);
  EXPECT_EQ(stats.faults_injected, 1u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(outs[i], ref.run(batch[i])) << i;  // backpressure only
  }
}

TEST(Fault, KernelExceptionAbortsRunAndEngineStaysReusable) {
  const TinyNet net;
  const ReferenceExecutor ref = net.reference();
  const std::vector<IntTensor> batch = net.batch(2, 72);
  for (const ExecutorKind kind :
       {ExecutorKind::kThreadPerKernel, ExecutorKind::kPooled}) {
    EngineOptions opt;
    opt.executor = kind;
    FaultEvent e = FaultPlan::kernel_throw("", /*run=*/0, /*step=*/0);
    e.target_index = 0;  // first registered kernel, whatever its name
    opt.faults.add(e);
    StreamEngine engine(net.pipeline, net.params, opt);
    try {
      (void)engine.run(batch);
      FAIL() << "run with an armed kernel exception must throw";
    } catch (const Error& err) {
      EXPECT_NE(std::string(err.what()).find("injected"), std::string::npos)
          << err.what();
    }
    // The fault window has passed: the same engine heals completely.
    const std::vector<IntTensor> clean = engine.run(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(clean[i], ref.run(batch[i])) << i;
    }
  }
}

TEST(Fault, KernelHangIsUnwedgedByCancel) {
  const TinyNet net;
  const ReferenceExecutor ref = net.reference();
  const std::vector<IntTensor> batch = net.batch(2, 73);
  EngineOptions opt;
  FaultEvent e = FaultPlan::kernel_hang("", /*run=*/0, /*step=*/0);
  e.target_index = 0;
  opt.faults.add(e);
  StreamEngine engine(net.pipeline, net.params, opt);
  std::thread watchdog([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    engine.cancel();
  });
  EXPECT_THROW((void)engine.run(batch), Error);
  watchdog.join();
  const std::vector<IntTensor> clean = engine.run(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(clean[i], ref.run(batch[i])) << i;
  }
}

TEST(Fault, ReplicaCrashTargetsOnlyItsReplicaIdentity) {
  const TinyNet net;
  const std::vector<IntTensor> batch = net.batch(1, 74);
  FaultPlan plan;
  plan.add(FaultPlan::replica_crash(/*replica=*/1, /*first_run=*/0,
                                    /*last_run=*/1));
  EngineOptions healthy;
  healthy.faults = plan;
  healthy.fault_replica = 0;
  StreamEngine engine0(net.pipeline, net.params, healthy);
  EXPECT_NO_THROW((void)engine0.run(batch));

  EngineOptions doomed = healthy;
  doomed.fault_replica = 1;
  StreamEngine engine1(net.pipeline, net.params, doomed);
  EXPECT_THROW((void)engine1.run(batch), Error);  // run 0
  EXPECT_THROW((void)engine1.run(batch), Error);  // run 1
  EXPECT_NO_THROW((void)engine1.run(batch));      // past the window
}

// ---- timing-model link faults --------------------------------------------

TEST(Fault, SimLinkOutageStallsThePartitionedPipeline) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  SimConfig base;
  base.cut_after_nodes = {1};
  const SimResult healthy = simulate(p, base, 2);

  SimConfig faulty = base;
  FaultPlan plan;
  plan.add(FaultPlan::link_drop(/*link=*/0, /*down_from_cycle=*/100,
                                /*down_cycles=*/5000));
  apply_link_faults(plan, faulty, /*seed=*/7);
  ASSERT_EQ(faulty.link_faults.size(), 1u);
  const SimResult r = simulate(p, faulty, 2);
  EXPECT_GT(r.total_cycles, healthy.total_cycles)
      << "a 5000-cycle MaxRing outage cannot be free";
}

TEST(Fault, SimLinkCorruptionRetransmitsDeterministically) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  SimConfig cfg;
  cfg.cut_after_nodes = {1};
  FaultPlan plan;
  plan.add(FaultPlan::link_corrupt(/*link=*/0, /*per_million=*/200'000));
  apply_link_faults(plan, cfg, /*seed=*/42);
  const SimResult r1 = simulate(p, cfg, 2);
  const SimResult r2 = simulate(p, cfg, 2);
  std::uint64_t retransmits = 0;
  for (const KernelStats& k : r1.kernels) retransmits += k.retransmits;
  EXPECT_GT(retransmits, 0u);
  EXPECT_EQ(r1.total_cycles, r2.total_cycles);  // seeded replay
  std::uint64_t retransmits2 = 0;
  for (const KernelStats& k : r2.kernels) retransmits2 += k.retransmits;
  EXPECT_EQ(retransmits, retransmits2);
}

TEST(Fault, ApplyDeratesPartitionLinkCapacity) {
  FaultPlan plan;
  plan.add(FaultPlan::link_drop(/*link=*/1, /*down_from_cycle=*/0,
                                /*down_cycles=*/10));
  plan.add(FaultPlan::link_corrupt(/*link=*/0, /*per_million=*/100'000));
  PartitionConfig cfg;
  apply_link_faults(plan, cfg);
  EXPECT_EQ(cfg.link_capacity_mbps(1), 0.0);  // dead link
  // A 10% corruption rate re-serializes 10% of traffic: 1/1.1 capacity.
  EXPECT_NEAR(cfg.link_capacity_mbps(0), 4000.0 / 1.1, 1.0);
  EXPECT_EQ(cfg.link_capacity_mbps(5), 4000.0);  // untouched links
}

TEST(Fault, DeadLinkMakesThePartitionInfeasible) {
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  const PartitionResult healthy = partition_optimal(p);
  ASSERT_GT(healthy.num_dfes(), 1);
  PartitionConfig cfg;
  cfg.link_health = {0.0};  // first MaxRing hop is down
  const PartitionResult r = partition_optimal(p, cfg);
  EXPECT_FALSE(r.feasible());
  EXPECT_TRUE(std::isinf(r.link_slowdown));
}

// ---- live link fault kinds ------------------------------------------------

TEST(FaultLink, ChaosEmitsLinkKindsOnlyWhenAsked) {
  // The default draw must stay byte-identical to what existing soaks
  // replay: no link kinds unless include_link_faults is set.
  const FaultPlan plain = FaultPlan::chaos(404);
  for (const FaultEvent& e : plain.events) {
    EXPECT_NE(e.kind, FaultKind::kLinkOutage);
    EXPECT_NE(e.kind, FaultKind::kLinkFrameCorrupt);
    EXPECT_NE(e.kind, FaultKind::kLinkDeath);
  }

  FaultPlan::ChaosOptions opts;
  opts.events = 24;
  opts.include_link_faults = true;
  opts.links = 3;
  const FaultPlan linky = FaultPlan::chaos(404, opts);
  int link_events = 0;
  for (const FaultEvent& e : linky.events) {
    if (e.kind == FaultKind::kLinkOutage ||
        e.kind == FaultKind::kLinkFrameCorrupt ||
        e.kind == FaultKind::kLinkDeath) {
      ++link_events;
      EXPECT_GE(e.link, 0);
      EXPECT_LT(e.link, opts.links);
    }
  }
  EXPECT_GT(link_events, 0) << "24 draws over 7 kinds must hit a link kind";

  // Seeded replay: the linky plan is reproduced event for event.
  const FaultPlan again = FaultPlan::chaos(404, opts);
  ASSERT_EQ(linky.events.size(), again.events.size());
  for (std::size_t i = 0; i < linky.events.size(); ++i) {
    EXPECT_EQ(linky.events[i].kind, again.events[i].kind);
    EXPECT_EQ(linky.events[i].link, again.events[i].link);
    EXPECT_EQ(linky.events[i].first_run, again.events[i].first_run);
    EXPECT_EQ(linky.events[i].after_values, again.events[i].after_values);
    EXPECT_EQ(linky.events[i].outage_us, again.events[i].outage_us);
  }
}

TEST(FaultLink, ApplyDeratesPartitionForLiveLinkKinds) {
  FaultPlan plan;
  plan.add(FaultPlan::link_death(/*link=*/1, /*run=*/0, /*after_frames=*/8));
  plan.add(FaultPlan::link_frame_corrupt(/*link=*/0, /*per_million=*/100'000));
  plan.add(FaultPlan::link_outage(/*link=*/2, /*run=*/0, /*after_frames=*/0,
                                  /*outage_us=*/2'000));
  PartitionConfig cfg;
  apply_link_faults(plan, cfg);
  EXPECT_EQ(cfg.link_capacity_mbps(1), 0.0);  // death: planner sees it gone
  EXPECT_NEAR(cfg.link_capacity_mbps(0), 4000.0 / 1.1, 1.0);
  EXPECT_EQ(cfg.link_capacity_mbps(2), 0.0);  // outage derates like a drop
  EXPECT_EQ(cfg.link_capacity_mbps(5), 4000.0);
}

TEST(FaultLink, DeadLinkFlipsCheckPartitionInfeasible) {
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  const PartitionConfig healthy_cfg;
  const PartitionResult placement = partition_optimal(p, healthy_cfg);
  ASSERT_TRUE(placement.feasible());
  ASSERT_GT(placement.num_dfes(), 1);
  Report before;
  check_partition(p, placement, healthy_cfg, before);
  EXPECT_TRUE(before.ok()) << before.str();

  // Kill the first MaxRing hop: the same placement must now fail the
  // wire-rate proof with the exact oversubscription code.
  PartitionConfig derated = healthy_cfg;
  FaultPlan plan;
  plan.add(FaultPlan::link_death(/*link=*/0, /*run=*/0, /*after_frames=*/0));
  apply_link_faults(plan, derated);
  Report after;
  check_partition(p, placement, derated, after);
  EXPECT_FALSE(after.ok());
  EXPECT_TRUE(after.has(diag::kLinkOversubscribed)) << after.str();
}

TEST(FaultLink, LinkCapacityClampsOutOfRangeHealth) {
  PartitionConfig cfg;
  cfg.link_health = {-0.5, 1.7};
  EXPECT_EQ(cfg.link_capacity_mbps(0), 0.0);      // clamped up from negative
  EXPECT_EQ(cfg.link_capacity_mbps(1), 4000.0);   // clamped down to 1.0
  EXPECT_EQ(cfg.link_capacity_mbps(2), 4000.0);   // beyond the vector = 1.0
}

// ---- MaxRing link transport ------------------------------------------------

namespace {

/// Drive `frames` payload frames (plus close) through `link` from a sender
/// thread while the caller receives; returns the received payloads.
std::vector<std::vector<std::int32_t>> pump_link(MaxRingLink& link,
                                                 int frames) {
  std::thread sender([&] {
    try {
      for (int i = 0; i < frames; ++i) {
        std::vector<std::int32_t> payload(16, i + 1);
        payload[0] = i;  // distinguishable first word
        link.send(payload);
      }
      link.close();
    } catch (const LinkDeadError&) {
      // The receiver-side assertions decide whether death was expected.
    }
  });
  std::vector<std::vector<std::int32_t>> got;
  try {
    std::vector<std::int32_t> frame;
    while (link.recv(frame)) got.push_back(frame);
  } catch (const LinkDeadError&) {
  }
  sender.join();
  return got;
}

}  // namespace

TEST(FaultLink, MaxRingDeliversInOrderWithoutRetransmits) {
  LinkConfig cfg;
  cfg.pace = false;
  MaxRingLink link(cfg);
  const auto got = pump_link(link, 12);
  ASSERT_EQ(got.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)][0], i);
  }
  const LinkStats s = link.stats();
  EXPECT_EQ(s.frames_sent, 13u);  // 12 payloads + close
  EXPECT_EQ(s.frames_delivered, 13u);
  EXPECT_EQ(s.retransmits, 0u);
  EXPECT_FALSE(s.dead);
}

TEST(FaultLink, MaxRingHealsSeededCorruptionBitExact) {
  LinkConfig cfg;
  cfg.pace = false;
  MaxRingLink link(cfg);
  LinkFaultSite site;
  site.corrupt_per_million = 300'000;  // ~30% of transmissions arrive broken
  site.rng = Rng(99);
  site.armed = true;
  link.set_fault(&site);
  const auto got = pump_link(link, 24);
  ASSERT_EQ(got.size(), 24u);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)][0], i) << "payload healed";
    EXPECT_EQ(got[static_cast<std::size_t>(i)][8], i + 1);
  }
  const LinkStats s = link.stats();
  EXPECT_GT(s.checksum_drops, 0u) << "the corruption rate must have fired";
  EXPECT_GT(s.retransmits, 0u);
  EXPECT_FALSE(s.dead);
}

TEST(FaultLink, MaxRingRidesOutATransientOutage) {
  LinkConfig cfg;
  cfg.pace = false;
  cfg.ack_timeout_us = 2'000;
  cfg.retransmit_backoff_us = 500;
  MaxRingLink link(cfg);
  LinkFaultSite site;
  site.outage_from = 3;      // wire goes dark at the 4th transmission...
  site.outage_us = 4'000;    // ...for 4ms — inside the retransmit budget
  site.armed = true;
  link.set_fault(&site);
  const auto got = pump_link(link, 8);
  ASSERT_EQ(got.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)][0], i);
  }
  const LinkStats s = link.stats();
  EXPECT_GT(s.outage_drops, 0u);
  EXPECT_GT(s.retransmits, 0u);
  EXPECT_FALSE(s.dead) << "a transient outage must not escalate";
}

TEST(FaultLink, MaxRingEscalatesPermanentDeathOnBothSides) {
  LinkConfig cfg;
  cfg.pace = false;
  cfg.ack_timeout_us = 1'000;
  cfg.max_retransmits = 2;
  cfg.retransmit_backoff_us = 100;
  cfg.recv_patience_us = 200'000;
  MaxRingLink link(cfg);
  LinkFaultSite site;
  site.death_from = 4;  // the 5th transmission and everything after is lost
  site.armed = true;
  link.set_fault(&site);
  const auto got = pump_link(link, 10);
  EXPECT_EQ(got.size(), 4u) << "frames before the death still delivered";
  const LinkStats s = link.stats();
  EXPECT_TRUE(s.dead);
  EXPECT_TRUE(link.dead());
  EXPECT_GE(s.retransmits, 2u) << "the full budget is spent before escalating";
}

TEST(FaultLink, LinkedEngineHealsSeededLinkChaosMidRunBitExact) {
  // The partitioned soak in miniature: a two-segment chain whose only
  // MaxRing link suffers a seeded outage window AND a seeded corruption
  // rate mid-run. Every output must stay bit-exact against the scalar
  // reference with no failover — transient faults heal inside the link.
  const TinyNet net;
  LinkedEngineOptions opts;
  opts.cut_after_nodes = {1};
  opts.ack_timeout_us = 10'000;
  opts.retransmit_backoff_us = 300;
  opts.engine.faults.add(FaultPlan::link_outage(
      /*link=*/0, /*run=*/1, /*after_frames=*/4, /*outage_us=*/3'000));
  opts.engine.faults.add(
      FaultPlan::link_frame_corrupt(/*link=*/0, /*per_million=*/150'000));
  LinkedEngine engine(net.pipeline, net.params, opts);
  ASSERT_EQ(engine.links(), 1);

  const ReferenceExecutor ref = net.reference();
  const std::vector<IntTensor> images = net.batch(4, 17);
  StreamEngine::RunStats total{};
  for (int run = 0; run < 3; ++run) {
    StreamEngine::RunStats stats;
    const std::vector<IntTensor> out =
        engine.run(std::span<const IntTensor>(images), &stats);
    ASSERT_EQ(out.size(), images.size());
    for (std::size_t i = 0; i < images.size(); ++i) {
      EXPECT_EQ(out[i], ref.run(images[i])) << "run " << run << " image " << i;
    }
    total.link_frames += stats.link_frames;
    total.link_retransmits += stats.link_retransmits;
    total.link_failovers += stats.link_failovers;
  }
  EXPECT_GT(total.link_frames, 0u);
  EXPECT_GT(total.link_retransmits, 0u)
      << "the corruption rate and outage must exercise the retransmit path";
  EXPECT_EQ(total.link_failovers, 0u);
  EXPECT_TRUE(engine.link_healthy(0));
}

// ---- serving-layer healing -----------------------------------------------

TEST(FaultServe, BatchIsolationSavesTheInnocentRequests) {
  const TinyNet net;
  SessionConfig sc = net.session_config;
  FaultEvent e = FaultPlan::kernel_throw("", /*run=*/0, /*step=*/0);
  e.target_index = 0;
  sc.engine.faults.add(e);
  ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 4;
  cfg.batch_timeout_us = 100'000;  // generous: the burst must coalesce
  DfeServer server(net.spec, net.params, cfg, sc);
  const ReferenceExecutor ref = net.reference();
  const std::vector<IntTensor> images = net.batch(4, 80);
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(images.size());
  for (const IntTensor& img : images) {
    futures.push_back(server.submit_async(img));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const InferenceResult res = futures[i].get();
    ASSERT_EQ(res.status, ServerStatus::kOk) << to_string(res.status);
    EXPECT_EQ(res.logits, ref.run(images[i])) << i;
  }
  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.isolation_reruns, 4u);  // whole batch re-ran solo
  EXPECT_EQ(s.retries, 0u);           // isolation, not requeue, healed it
}

TEST(FaultServe, WatchdogBudgetCancelsHungReplicaAndRetriesElsewhere) {
  const TinyNet net;
  SessionConfig sc = net.session_config;
  FaultEvent hang = FaultPlan::kernel_hang("", /*run=*/0, /*step=*/0);
  hang.target_index = 0;
  hang.replica = 0;
  hang.last_run = 1'000'000;  // replica 0 is permanently wedged
  sc.engine.faults.add(hang);
  ServerConfig cfg;
  cfg.replicas = 2;
  cfg.max_batch = 2;
  cfg.batch_timeout_us = 200;
  cfg.run_budget_us = 60'000;
  cfg.watchdog_period_us = 1'000;
  // Replica 1 drains the queue while replica 0 sits in its first 60 ms
  // budget window, so a wedged replica gets exactly one observable
  // failure here — quarantine on it.
  cfg.quarantine_after = 1;
  cfg.retry_backoff_us = 100;
  DfeServer server(net.spec, net.params, cfg, sc);
  const ReferenceExecutor ref = net.reference();
  const std::vector<IntTensor> images = net.batch(8, 81);
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(images.size());
  for (const IntTensor& img : images) {
    futures.push_back(server.submit_async(img));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const InferenceResult res = futures[i].get();
    ASSERT_EQ(res.status, ServerStatus::kOk) << to_string(res.status);
    EXPECT_EQ(res.logits, ref.run(images[i])) << i;
    EXPECT_EQ(res.replica, 1) << "only replica 1 can complete a run";
  }
  server.stop();
  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_GE(s.watchdog_budget_cancels, 1u);
  EXPECT_GE(s.retries, 1u);
  EXPECT_GE(s.quarantines, 1u);
  EXPECT_EQ(server.replica_health(0), ReplicaHealth::kQuarantined);
  EXPECT_EQ(server.replica_health(1), ReplicaHealth::kHealthy);
}

TEST(FaultServe, MidRunDeadlineIsEnforcedByTheWatchdog) {
  const TinyNet net;
  SessionConfig sc = net.session_config;
  FaultEvent hang = FaultPlan::kernel_hang("", /*run=*/0, /*step=*/0);
  hang.target_index = 0;
  sc.engine.faults.add(hang);  // only run 0 wedges
  ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 1;
  cfg.batch_timeout_us = 0;
  cfg.run_budget_us = 0;  // no budget: only the deadline can cancel
  cfg.watchdog_period_us = 1'000;
  DfeServer server(net.spec, net.params, cfg, sc);
  const std::vector<IntTensor> images = net.batch(2, 82);
  const InferenceResult stuck =
      server.submit(images[0], /*deadline_us=*/30'000);
  EXPECT_EQ(stuck.status, ServerStatus::kDeadlineExceeded)
      << to_string(stuck.status);
  EXPECT_GE(server.metrics().snapshot().watchdog_deadline_cancels, 1u);
  // The hang window has passed: the same replica serves again.
  const InferenceResult healed = server.submit(images[1]);
  EXPECT_EQ(healed.status, ServerStatus::kOk) << healed.error;
}

TEST(FaultServe, QuarantineProbesAndReadmitsAFlakyReplica) {
  const TinyNet net;
  SessionConfig sc = net.session_config;
  // Runs 0..2 throw; everything after (including probes) is clean.
  FaultEvent e = FaultPlan::kernel_throw("", /*run=*/0, /*step=*/0);
  e.target_index = 0;
  e.last_run = 2;
  sc.engine.faults.add(e);
  ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 1;
  cfg.batch_timeout_us = 0;
  cfg.max_retries = 2;
  cfg.retry_backoff_us = 100;
  cfg.quarantine_after = 3;
  cfg.probation_probes = 2;
  cfg.probe_period_us = 1'000;
  DfeServer server(net.spec, net.params, cfg, sc);
  const ReferenceExecutor ref = net.reference();
  const std::vector<IntTensor> images = net.batch(2, 83);

  // 1 + 2 retries all land in the faulty run window: the request errors
  // and the third consecutive failure quarantines the replica.
  const InferenceResult doomed = server.submit(images[0]);
  EXPECT_EQ(doomed.status, ServerStatus::kError) << to_string(doomed.status);
  EXPECT_EQ(doomed.retries, 2);
  EXPECT_NE(doomed.error.find("injected"), std::string::npos) << doomed.error;

  // Probes run clean now: quarantined -> probation -> readmitted.
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::seconds(10);
  while (server.replica_health(0) != ReplicaHealth::kHealthy &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.replica_health(0), ReplicaHealth::kHealthy);

  const InferenceResult healed = server.submit(images[1]);
  ASSERT_EQ(healed.status, ServerStatus::kOk) << healed.error;
  EXPECT_EQ(healed.logits, ref.run(images[1]));
  server.stop();
  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_GE(s.quarantines, 1u);
  EXPECT_GE(s.probes, 2u);
  EXPECT_GE(s.readmissions, 1u);
  // Brownout tracked the quarantine window: entered with it, cleared by
  // the readmission.
  EXPECT_GE(s.brownout_entries, 1u);
  EXPECT_FALSE(s.brownout_active);
  EXPECT_FALSE(server.metrics().events().empty());
}

// The acceptance gate of the chaos subsystem: a seeded storm of
// detectable faults across a 4-replica farm, and still every future
// resolves, nothing is lost or double-answered, and every kOk result is
// bit-exact against the fault-free reference.
TEST(FaultServe, ChaosSoakLosesNothingAndStaysBitExact) {
  const TinyNet net;
  FaultPlan::ChaosOptions copts;
  copts.replicas = 4;
  copts.runs = 10;
  copts.events = 6;
  SessionConfig sc = net.session_config;
  sc.engine.faults = FaultPlan::chaos(2026, copts);
  ServerConfig cfg;
  cfg.replicas = 4;
  cfg.max_batch = 4;
  cfg.batch_timeout_us = 300;
  cfg.run_budget_us = 150'000;  // rescue hangs even under sanitizers
  cfg.watchdog_period_us = 1'000;
  cfg.max_retries = 3;
  cfg.retry_backoff_us = 100;
  cfg.quarantine_after = 2;
  cfg.probation_probes = 1;
  cfg.probe_period_us = 1'000;
  DfeServer server(net.spec, net.params, cfg, sc);
  const ReferenceExecutor ref = net.reference();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 18;
  std::vector<std::vector<IntTensor>> images(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    images[static_cast<std::size_t>(t)] =
        net.batch(kPerThread, 90 + static_cast<std::uint64_t>(t));
  }
  std::vector<std::vector<std::future<InferenceResult>>> futures(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kPerThread; ++r) {
        futures[static_cast<std::size_t>(t)].push_back(server.submit_async(
            images[static_cast<std::size_t>(t)][static_cast<std::size_t>(r)]));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  int ok = 0;
  int errors = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kPerThread; ++r) {
      InferenceResult res =
          futures[static_cast<std::size_t>(t)][static_cast<std::size_t>(r)]
              .get();  // every future must resolve: nothing lost
      if (res.status == ServerStatus::kOk) {
        ++ok;
        // Chaos draws only detectable faults, so completed results carry
        // no silent corruption.
        EXPECT_EQ(res.logits,
                  ref.run(images[static_cast<std::size_t>(t)]
                                [static_cast<std::size_t>(r)]))
            << "thread " << t << " request " << r;
      } else {
        ASSERT_EQ(res.status, ServerStatus::kError) << to_string(res.status);
        ++errors;
      }
    }
  }
  server.stop();
  const MetricsSnapshot s = server.metrics().snapshot();
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads * kPerThread);
  EXPECT_EQ(s.submitted, kTotal);
  EXPECT_EQ(static_cast<std::uint64_t>(ok + errors), kTotal);
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(ok));
  EXPECT_EQ(s.errors, static_cast<std::uint64_t>(errors));
  EXPECT_GT(ok, kThreads * kPerThread / 2)
      << "healing should complete most of the load";
}

}  // namespace
}  // namespace qnn
