#include "quant/threshold.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace qnn {
namespace {

/// Random BatchNorm parameters spanning positive, negative, large and small
/// slopes; slope magnitude kept away from zero to avoid float-boundary ties
/// (exact-boundary behaviour is covered by dedicated tests below).
BnParams random_bn(Rng& rng) {
  BnParams bn;
  bn.gamma = static_cast<float>((rng.next_double() * 3.8 + 0.2) *
                                (rng.next_bool() ? 1.0 : -1.0));
  bn.mu = static_cast<float>((rng.next_double() - 0.5) * 40.0);
  bn.inv_sigma = static_cast<float>(rng.next_double() * 0.9 + 0.1);
  bn.beta = static_cast<float>((rng.next_double() - 0.5) * 8.0);
  return bn;
}

/// Property: the folded integer-threshold staircase equals the float path
/// (BatchNorm then quantizer) for every integer pre-activation, except
/// within a numerical hair of a range endpoint.
class ThresholdFoldProperty : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdFoldProperty, MatchesFloatPath) {
  const int bits = GetParam();
  Rng rng(99 + static_cast<std::uint64_t>(bits));
  for (int trial = 0; trial < 60; ++trial) {
    const BnParams bn = random_bn(rng);
    const ActQuantizer q(bits, rng.next_double() * 2.0 + 0.05);
    const auto t = ThresholdActivation::fold(bn, q);
    for (std::int32_t a = -300; a <= 300; ++a) {
      const double y = bn.apply(a);
      // Skip values within float-rounding distance of an endpoint.
      const double r = y / q.range_size();
      if (std::abs(r - std::round(r)) < 1e-9) continue;
      EXPECT_EQ(t.eval(a), q.code(y))
          << "bits=" << bits << " trial=" << trial << " a=" << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ThresholdFoldProperty,
                         ::testing::Values(1, 2, 3, 4));

TEST(Threshold, BinarySearchMatchesDirectEval) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const BnParams bn = random_bn(rng);
    const ActQuantizer q(2 + static_cast<int>(rng.next_below(3)),
                         rng.next_double() + 0.05);
    const auto t = ThresholdActivation::fold(bn, q);
    for (std::int32_t a = -500; a <= 500; ++a) {
      ASSERT_EQ(t.eval_binary_search(a), t.eval(a)) << "a=" << a;
    }
  }
}

TEST(Threshold, ExactIntegerEndpoints) {
  // BatchNorm(a) = a (identity), d = 2: endpoints at a = 2, 4, 6.
  BnParams bn;  // gamma=1, mu=0, inv_sigma=1, beta=0
  const ActQuantizer q(2, 2.0);
  const auto t = ThresholdActivation::fold(bn, q);
  EXPECT_EQ(t.eval(1), 0);
  EXPECT_EQ(t.eval(2), 1);  // endpoint belongs to the upper range
  EXPECT_EQ(t.eval(3), 1);
  EXPECT_EQ(t.eval(4), 2);
  EXPECT_EQ(t.eval(6), 3);
  EXPECT_EQ(t.eval(1000), 3);
  EXPECT_EQ(t.eval(-1000), 0);
}

TEST(Threshold, NegativeSlopeFlipsStaircase) {
  BnParams bn;
  bn.gamma = -1.0f;  // BatchNorm(a) = -a
  const ActQuantizer q(2, 2.0);
  const auto t = ThresholdActivation::fold(bn, q);
  EXPECT_EQ(t.sign(), -1);
  EXPECT_EQ(t.eval(-6), 3);
  EXPECT_EQ(t.eval(-4), 2);
  EXPECT_EQ(t.eval(-2), 1);
  EXPECT_EQ(t.eval(0), 0);
  EXPECT_EQ(t.eval(5), 0);
}

TEST(Threshold, ZeroSlopeIsConstant) {
  BnParams bn;
  bn.gamma = 0.0f;
  bn.beta = 5.0f;
  const ActQuantizer q(2, 2.0);
  const auto t = ThresholdActivation::fold(bn, q);
  EXPECT_TRUE(t.is_constant());
  EXPECT_EQ(t.eval(-100), 2);  // code(5.0) with d=2
  EXPECT_EQ(t.eval(100), 2);
  EXPECT_EQ(t.eval_binary_search(0), 2);
}

TEST(Threshold, ThresholdCountIsTwoToTheNMinusOne) {
  BnParams bn;
  for (int bits = 1; bits <= 4; ++bits) {
    const auto t = ThresholdActivation::fold(bn, ActQuantizer(bits, 1.0));
    EXPECT_EQ(static_cast<int>(t.thresholds().size()), (1 << bits) - 1);
  }
}

TEST(Threshold, TwoParamRoundTrip) {
  // The hardware stores only (tau, Delta) per channel (§III-B1a); rebuilding
  // from that pair must reproduce the identical staircase.
  Rng rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    const BnParams bn = random_bn(rng);
    const ActQuantizer q(2, rng.next_double() + 0.1);
    const auto folded = ThresholdActivation::fold(bn, q);
    const auto rebuilt =
        ThresholdActivation::from_two_param(folded.two_param(), q.bits());
    for (std::int32_t a = -200; a <= 200; ++a) {
      ASSERT_EQ(rebuilt.eval(a), folded.eval(a)) << "a=" << a;
    }
  }
}

TEST(Threshold, TwoParamMatchesPaperFormulas) {
  // tau = mu - B/(gamma*i), Delta = d/(gamma*i)  (§III-B3).
  BnParams bn;
  bn.gamma = 2.0f;
  bn.mu = 3.0f;
  bn.inv_sigma = 0.5f;
  bn.beta = 4.0f;
  const ActQuantizer q(2, 1.5);
  const auto t = ThresholdActivation::fold(bn, q);
  EXPECT_NEAR(t.two_param().tau, 3.0 - 4.0 / (2.0 * 0.5), 1e-9);
  EXPECT_NEAR(t.two_param().delta, 1.5 / (2.0 * 0.5), 1e-9);
}

TEST(Threshold, LayerFoldCoversAllChannels) {
  Rng rng(5);
  BnLayerParams bn(6);
  for (int c = 0; c < 6; ++c) bn.at(c) = random_bn(rng);
  const ActQuantizer q(2, 0.7);
  const auto layer = ThresholdLayer::fold(bn, q);
  EXPECT_EQ(layer.channels(), 6);
  for (int c = 0; c < 6; ++c) {
    const auto direct = ThresholdActivation::fold(bn.at(c), q);
    for (std::int32_t a = -50; a <= 50; ++a) {
      ASSERT_EQ(layer.at(c).eval(a), direct.eval(a));
    }
  }
}

}  // namespace
}  // namespace qnn
