#include <gtest/gtest.h>

#include "core/error.h"
#include "core/shape.h"
#include "core/tensor.h"

namespace qnn {
namespace {

TEST(Shape, ElemsAndValidity) {
  const Shape s{4, 5, 3};
  EXPECT_EQ(s.elems(), 60);
  EXPECT_TRUE(s.valid());
  EXPECT_FALSE((Shape{0, 5, 3}).valid());
  EXPECT_FALSE((Shape{}).valid());
}

TEST(Shape, DepthFirstIndexing) {
  const Shape s{2, 3, 4};
  // Channel varies fastest, then x, then y (the streaming order).
  EXPECT_EQ(s.index(0, 0, 0), 0);
  EXPECT_EQ(s.index(0, 0, 3), 3);
  EXPECT_EQ(s.index(0, 1, 0), 4);
  EXPECT_EQ(s.index(1, 0, 0), 12);
  EXPECT_EQ(s.index(1, 2, 3), 23);
}

TEST(Shape, ConvOutExtent) {
  EXPECT_EQ(conv_out_extent(224, 7, 2, 3), 112);  // ResNet conv1
  EXPECT_EQ(conv_out_extent(112, 3, 2, 1), 56);   // ResNet maxpool
  EXPECT_EQ(conv_out_extent(224, 11, 4, 2), 55);  // AlexNet conv1
  EXPECT_EQ(conv_out_extent(32, 3, 1, 1), 32);    // padded same conv
  EXPECT_EQ(conv_out_extent(32, 2, 2, 0), 16);    // VGG pool
}

TEST(Shape, ConvOutShape) {
  const Shape in{224, 224, 3};
  const Shape out = conv_out_shape(in, 64, 7, 2, 3);
  EXPECT_EQ(out, (Shape{112, 112, 64}));
}

TEST(Shape, ConvOutShapeRejectsOversizedWindow) {
  EXPECT_THROW((void)conv_out_shape(Shape{4, 4, 1}, 1, 7, 1, 0), Error);
}

TEST(Tensor, FillAndAccess) {
  IntTensor t(Shape{2, 2, 2}, 7);
  EXPECT_EQ(t.size(), 8);
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 7);
  t.at(1, 0, 1) = -3;
  EXPECT_EQ(t.at(1, 0, 1), -3);
  EXPECT_EQ(t[t.shape().index(1, 0, 1)], -3);
}

TEST(Tensor, FlatOrderIsDepthFirst) {
  IntTensor t(Shape{2, 2, 3});
  std::int32_t v = 0;
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 2; ++x) {
      for (int c = 0; c < 3; ++c) t.at(y, x, c) = v++;
    }
  }
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i], static_cast<std::int32_t>(i));
  }
}

TEST(Tensor, EqualityIsValueBased) {
  IntTensor a(Shape{1, 2, 2}, 1);
  IntTensor b(Shape{1, 2, 2}, 1);
  EXPECT_EQ(a, b);
  b.at(0, 1, 1) = 2;
  EXPECT_NE(a, b);
}

TEST(FilterShapeTest, WeightCounts) {
  const FilterShape f{64, 3, 128};
  EXPECT_EQ(f.weights_per_filter(), 3 * 3 * 128);
  EXPECT_EQ(f.total_weights(), 64 * 3 * 3 * 128);
}

TEST(ErrorTest, CheckMacroThrowsWithContext) {
  try {
    QNN_CHECK(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

}  // namespace
}  // namespace qnn
