// Backend seam tests: registry behavior, the QNN-D5xx capability checks,
// and the conformance suite — every registered backend must produce
// bit-exact results against the scalar reference on the topology zoo.
#include "backend/backend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "backend/builtin.h"
#include "io/synthetic.h"
#include "models/zoo.h"
#include "nn/reference.h"
#include "verify/backend_check.h"
#include "verify/report.h"
#include "test_util.h"

namespace qnn {
namespace {

// ---- registry ----------------------------------------------------------

TEST(BackendRegistry, BuiltinsRegisterOnFirstUse) {
  BackendRegistry& reg = backend_registry();
  EXPECT_GE(reg.size(), 3);
  ASSERT_NE(reg.find("engine"), nullptr);
  ASSERT_NE(reg.find("simulator"), nullptr);
  ASSERT_NE(reg.find("reference"), nullptr);
  EXPECT_EQ(reg.find("engine")->tier(), BackendTier::kFast);
  EXPECT_EQ(reg.find("simulator")->tier(), BackendTier::kShadow);
  EXPECT_EQ(reg.find("reference")->tier(), BackendTier::kSlow);
  EXPECT_EQ(reg.find("no-such-backend"), nullptr);
}

TEST(BackendRegistry, AtThrowsListingNames) {
  try {
    (void)backend_registry().at("bogus");
    FAIL() << "at() must throw for unknown backends";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("engine"), std::string::npos);
  }
}

TEST(BackendRegistry, AtSuggestsTheNearMissForPlausibleTypos) {
  // A one- or two-edit typo (case-insensitive) gets a concrete suggestion
  // alongside the registered-names list.
  try {
    (void)backend_registry().at("enigne");
    FAIL() << "at() must throw for unknown backends";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did you mean \"engine\"?"), std::string::npos)
        << what;
  }
  try {
    (void)backend_registry().at("Simulator");
    FAIL() << "at() is case-sensitive and must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did you mean \"simulator\"?"), std::string::npos)
        << what;
  }
  // Nothing plausible: list the names, suggest nothing.
  try {
    (void)backend_registry().at("bogus");
    FAIL() << "at() must throw for unknown backends";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos);
  }
}

TEST(BackendRegistry, FirstOfTierFindsBuiltins) {
  BackendRegistry& reg = backend_registry();
  ASSERT_NE(reg.first_of_tier(BackendTier::kFast), nullptr);
  ASSERT_NE(reg.first_of_tier(BackendTier::kShadow), nullptr);
  ASSERT_NE(reg.first_of_tier(BackendTier::kSlow), nullptr);
  EXPECT_EQ(reg.first_of_tier(BackendTier::kFast)->name(), "engine");
}

TEST(BackendRegistry, DuplicateNameRejected) {
  EXPECT_THROW(backend_registry().register_backend(make_engine_backend()),
               Error);
}

TEST(BackendRegistry, InfoDescribesCostAndDevices) {
  for (Backend* b : backend_registry().all()) {
    EXPECT_FALSE(b->info().name.empty());
    EXPECT_GT(b->info().relative_cost, 0.0);
    EXPECT_GE(b->info().max_devices, 1);
    EXPECT_GE(b->device_count(), 0);
  }
}

// ---- QNN-D5xx capability checks ---------------------------------------

/// A backend with no devices and no supported ops, for the D5xx paths.
class BrokenBackend final : public Backend {
 public:
  [[nodiscard]] const BackendInfo& info() const override {
    static const BackendInfo kInfo{"broken", BackendTier::kSlow,
                                   "test-only: supports nothing", 1.0, 0};
    return kInfo;
  }
  [[nodiscard]] int device_count() const override { return 0; }
  [[nodiscard]] bool supports_op(const Node&) const override {
    return false;
  }
  [[nodiscard]] std::unique_ptr<BackendSession> compile(
      const Pipeline&, NetworkParams,
      const EngineOptions&) const override {
    throw Error("broken backend cannot compile");
  }
};

TEST(BackendCheck, NoDevicesIsD502) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const BrokenBackend broken;
  const Report r = verify_backend(p, broken);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(diag::kBackendNoDevices));
}

TEST(BackendCheck, UnsupportedOpIsD501PerNode) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const BrokenBackend broken;
  const Report r = verify_backend(p, broken);
  EXPECT_EQ(r.count(diag::kBackendUnsupportedOp), p.size());  // every node
}

TEST(BackendCheck, BuiltinsSupportTheZoo) {
  for (const NetworkSpec& spec :
       {models::tiny(12, 4, 2), models::vgg_like(32, 10, 2)}) {
    const Pipeline p = expand(spec);
    for (Backend* b : backend_registry().all()) {
      if (b->name() != "engine" && b->name() != "simulator" &&
          b->name() != "reference") {
        continue;  // test-registered backends may support nothing
      }
      EXPECT_TRUE(verify_backend(p, *b).ok())
          << b->name() << " rejects " << p.name;
    }
  }
}

TEST(BackendCheck, EngineRejectsWideConvInputs) {
  // The engine's XNOR datapath decomposes conv inputs into bit-planes;
  // beyond 16 bits it refuses (mirrors the D105 shape check).
  Node conv;
  conv.kind = NodeKind::Conv;
  conv.in_bits = 20;
  conv.out_bits = 2;
  EXPECT_FALSE(backend_registry().at("engine").supports_op(conv));
  EXPECT_TRUE(backend_registry().at("reference").supports_op(conv));
}

// ---- conformance: every backend bit-exact vs the scalar reference ------

class BackendConformance
    : public ::testing::TestWithParam<const char*> {};

TEST_P(BackendConformance, BitExactOnTopologyZoo) {
  Backend& backend = backend_registry().at(GetParam());
  for (const NetworkSpec& spec :
       {models::tiny(12, 4, 2), models::tiny(16, 6, 4),
        models::vgg_like(32, 10, 2)}) {
    const Pipeline p = expand(spec);
    NetworkParams params = NetworkParams::random(p, 91);
    const ReferenceExecutor ref(p, params);
    const std::unique_ptr<BackendSession> session =
        backend.compile(p, params);
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(&session->backend(), &backend);
    const auto batch =
        synthetic_batch(2, p.input.h, p.input.w, p.input.c, 92);
    StreamEngine::RunStats stats;
    const std::vector<IntTensor> out =
        session->infer_batch(batch, &stats);
    ASSERT_EQ(out.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(out[i], ref.run(batch[i]))
          << backend.name() << " diverges on " << p.name << " image " << i;
    }
    // classify() agrees with the reference argmax.
    EXPECT_EQ(session->classify(batch[0]),
              ReferenceExecutor::argmax(ref.run(batch[0])));
  }
}

INSTANTIATE_TEST_SUITE_P(Builtins, BackendConformance,
                         ::testing::Values("engine", "simulator",
                                           "reference"));

// ---- backend-specific behavior ----------------------------------------

TEST(SimBackend, FillsSimulatedSeconds) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  NetworkParams params = NetworkParams::random(p, 93);
  const auto session =
      backend_registry().at("simulator").compile(p, std::move(params));
  StreamEngine::RunStats stats;
  (void)session->infer_batch(synthetic_batch(3, 12, 12, 3, 94), &stats);
  EXPECT_GT(stats.simulated_seconds, 0.0);
  // Modeled time scales with the batch: 3 images cost more than 1.
  StreamEngine::RunStats one;
  (void)session->infer_batch(synthetic_batch(1, 12, 12, 3, 94), &one);
  EXPECT_GT(stats.simulated_seconds, one.simulated_seconds);
  EXPECT_NE(session->report().find("simulated timing"), std::string::npos);
}

TEST(EngineBackend, LiveRunsReportZeroSimulatedSeconds) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  NetworkParams params = NetworkParams::random(p, 95);
  const auto session =
      backend_registry().at("engine").compile(p, std::move(params));
  StreamEngine::RunStats stats;
  (void)session->infer_batch(synthetic_batch(1, 12, 12, 3, 96), &stats);
  EXPECT_EQ(stats.simulated_seconds, 0.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(ReferenceBackend, PacesToItsFloor) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  NetworkParams params = NetworkParams::random(p, 97);
  // Standalone instance with a measurable floor (registry copy uses the
  // default); not registered, so no name clash.
  const std::unique_ptr<Backend> slow = make_reference_backend(5000);
  const auto session = slow->compile(p, std::move(params));
  StreamEngine::RunStats stats;
  (void)session->infer_batch(synthetic_batch(2, 12, 12, 3, 98), &stats);
  EXPECT_GE(stats.wall_seconds, 2 * 5000 * 1e-6 * 0.9);
}

TEST(BackendSession, ReportNamesItsBackend) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  NetworkParams params = NetworkParams::random(p, 99);
  for (const char* name : {"engine", "simulator", "reference"}) {
    const auto session = backend_registry().at(name).compile(p, params);
    const std::string r = session->report();
    EXPECT_NE(r.find(std::string("backend: ") + name), std::string::npos);
  }
}

TEST(BackendSession, CancelAbortsAndSessionRecovers) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  NetworkParams params = NetworkParams::random(p, 100);
  const std::unique_ptr<Backend> slow = make_reference_backend(200'000);
  const auto session = slow->compile(p, std::move(params));
  std::atomic<bool> started{false};
  std::thread canceller([&] {
    while (!started.load()) std::this_thread::yield();
    // The session re-arms its abort flag at run start, so wait until the
    // (200 ms) run is clearly in flight before cancelling.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    session->cancel();
  });
  const auto batch = synthetic_batch(1, 12, 12, 3, 101);
  started.store(true);
  EXPECT_THROW((void)session->infer_batch(batch), Error);
  canceller.join();
  // The session re-arms: a fresh (fast) run succeeds after the abort.
  const std::unique_ptr<Backend> quick = make_reference_backend(1);
  const auto ok = quick->compile(p, NetworkParams::random(p, 100));
  EXPECT_EQ(ok->infer_batch(batch).size(), 1u);
}

}  // namespace
}  // namespace qnn
