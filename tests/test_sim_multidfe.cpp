// Multi-DFE cycle simulation (§III-B6): cutting the pipeline across DFEs
// and serializing the crossing streams over the MaxRing must not change
// throughput at realistic link rates — validated here inside the cycle
// simulator, not just by the partitioner's bandwidth arithmetic.
#include <gtest/gtest.h>

#include "models/zoo.h"
#include "partition/partitioner.h"
#include "sim/cycle_model.h"

namespace qnn {
namespace {

TEST(SimMultiDfe, PartitionedResNetKeepsItsInterval) {
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  const SimConfig base;
  const std::uint64_t solo = simulate(p, base, 2).steady_interval;

  // Cut exactly where the optimal partitioner cuts, with the MaxRing's
  // real per-clock budget (4 Gbps / 105 MHz ~ 38 bits).
  const PartitionResult plan = partition_optimal(p);
  ASSERT_EQ(plan.num_dfes(), 3);
  SimConfig cut = base;
  for (const auto& c : plan.cuts) cut.cut_after_nodes.push_back(c.after_node);
  const SimResult r = simulate(p, cut, 2);
  EXPECT_EQ(r.steady_interval, solo)
      << "the paper's 'almost without a performance drop'";
}

TEST(SimMultiDfe, LinkKernelsAppearAndCarryTraffic) {
  const Pipeline p = expand(models::vgg_like(16, 10, 2));
  SimConfig cfg;
  cfg.cut_after_nodes = {3};
  const SimResult r = simulate(p, cfg, 2);
  int links = 0;
  for (const auto& k : r.kernels) {
    if (k.name.rfind("link_", 0) == 0) {
      ++links;
      EXPECT_GT(k.outputs, 0u) << k.name;
    }
  }
  EXPECT_EQ(links, 1);  // one stream crosses a chain cut
}

TEST(SimMultiDfe, SkipAndMainBothSerializeAcrossResidualCut) {
  NetworkSpec spec;
  spec.input = Shape{12, 12, 3};
  spec.conv(4, 3, 1, 1);
  spec.residual(4, 1);
  spec.dense(3, false);
  const Pipeline p = expand(spec);
  // Find the Add and cut between its two conv stages: both the regular
  // stream and the 16-bit skip stream must cross.
  int add_idx = -1;
  for (int i = 0; i < p.size(); ++i) {
    if (p.node(i).kind == NodeKind::Add) add_idx = i;
  }
  ASSERT_GT(add_idx, 0);
  SimConfig cfg;
  cfg.cut_after_nodes = {add_idx - 2};
  const SimResult r = simulate(p, cfg, 2);
  int links = 0;
  for (const auto& k : r.kernels) links += k.name.rfind("link_", 0) == 0;
  EXPECT_EQ(links, 2);
}

TEST(SimMultiDfe, StarvedLinkThrottlesThroughput) {
  // A deliberately narrow 1-bit/clock link must slow the pipeline: the
  // bottleneck becomes pixel_bits cycles per crossing pixel.
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const std::uint64_t solo = simulate(p, {}, 2).steady_interval;
  SimConfig narrow;
  narrow.cut_after_nodes = {1};  // after the first bnact (2-bit codes)
  narrow.link_bits_per_cycle = 1;
  const SimResult r = simulate(p, narrow, 2);
  EXPECT_GT(r.steady_interval, solo);
  // The crossing stream is 8 channels x 2 bits = 16 cycles per pixel over
  // a 12x12 map: at least 16 * 144 cycles per image at the link alone.
  EXPECT_GE(r.steady_interval, 16u * 12 * 12);
}

TEST(SimMultiDfe, PlannedBurstAmortizesLinkWordRounding) {
  // tiny cut after node 0: the crossing pixel is 8 ch x 14 bits = 112
  // bits. Over a 12-bit link, per-pixel framing costs ceil(112/12) = 10
  // clocks per pixel (1440/image — the bottleneck); a 16-pixel frame
  // costs ceil(1792/12) = 150 clocks (9.375/pixel), so carrying the
  // planned burst must strictly shorten the interval.
  const Pipeline p = expand(models::tiny(12, 4, 2));
  SimConfig narrow;
  narrow.cut_after_nodes = {0};
  narrow.link_bits_per_cycle = 12;
  const std::uint64_t legacy = simulate(p, narrow, 2).steady_interval;
  EXPECT_GE(legacy, 10u * 12 * 12);  // link-bound under per-pixel framing

  SimConfig framed = narrow;
  framed.link_bursts = {{/*consumer=*/1, /*to_skip_port=*/false,
                         /*values=*/128}};  // 16 pixels of 8 channels
  const std::uint64_t burst = simulate(p, framed, 2).steady_interval;
  EXPECT_LT(burst, legacy);

  // A one-pixel burst entry is the cycle-exact legacy framing.
  SimConfig onepix = narrow;
  onepix.link_bursts = {{1, false, 8}};
  EXPECT_EQ(simulate(p, onepix, 2).steady_interval, legacy);
}

TEST(SimMultiDfe, WideLinkIsTransparentOnTiny) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const std::uint64_t solo = simulate(p, {}, 2).steady_interval;
  SimConfig cfg;
  cfg.cut_after_nodes = {1, 3};
  cfg.link_bits_per_cycle = 1024;  // wider than any pixel
  const SimResult r = simulate(p, cfg, 2);
  // Pixel-per-clock links add latency but cannot change the interval.
  EXPECT_EQ(r.steady_interval, solo);
}

}  // namespace
}  // namespace qnn
