// Multi-DFE cycle simulation (§III-B6): cutting the pipeline across DFEs
// and serializing the crossing streams over the MaxRing must not change
// throughput at realistic link rates — validated here inside the cycle
// simulator, not just by the partitioner's bandwidth arithmetic.
#include <gtest/gtest.h>

#include "models/zoo.h"
#include "partition/partitioner.h"
#include "sim/cycle_model.h"

namespace qnn {
namespace {

TEST(SimMultiDfe, PartitionedResNetKeepsItsInterval) {
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  const SimConfig base;
  const std::uint64_t solo = simulate(p, base, 2).steady_interval;

  // Cut exactly where the optimal partitioner cuts, with the MaxRing's
  // real per-clock budget (4 Gbps / 105 MHz ~ 38 bits).
  const PartitionResult plan = partition_optimal(p);
  ASSERT_EQ(plan.num_dfes(), 3);
  SimConfig cut = base;
  for (const auto& c : plan.cuts) cut.cut_after_nodes.push_back(c.after_node);
  const SimResult r = simulate(p, cut, 2);
  EXPECT_EQ(r.steady_interval, solo)
      << "the paper's 'almost without a performance drop'";
}

TEST(SimMultiDfe, LinkKernelsAppearAndCarryTraffic) {
  const Pipeline p = expand(models::vgg_like(16, 10, 2));
  SimConfig cfg;
  cfg.cut_after_nodes = {3};
  const SimResult r = simulate(p, cfg, 2);
  int links = 0;
  for (const auto& k : r.kernels) {
    if (k.name.rfind("link_", 0) == 0) {
      ++links;
      EXPECT_GT(k.outputs, 0u) << k.name;
    }
  }
  EXPECT_EQ(links, 1);  // one stream crosses a chain cut
}

TEST(SimMultiDfe, SkipAndMainBothSerializeAcrossResidualCut) {
  NetworkSpec spec;
  spec.input = Shape{12, 12, 3};
  spec.conv(4, 3, 1, 1);
  spec.residual(4, 1);
  spec.dense(3, false);
  const Pipeline p = expand(spec);
  // Find the Add and cut between its two conv stages: both the regular
  // stream and the 16-bit skip stream must cross.
  int add_idx = -1;
  for (int i = 0; i < p.size(); ++i) {
    if (p.node(i).kind == NodeKind::Add) add_idx = i;
  }
  ASSERT_GT(add_idx, 0);
  SimConfig cfg;
  cfg.cut_after_nodes = {add_idx - 2};
  const SimResult r = simulate(p, cfg, 2);
  int links = 0;
  for (const auto& k : r.kernels) links += k.name.rfind("link_", 0) == 0;
  EXPECT_EQ(links, 2);
}

TEST(SimMultiDfe, StarvedLinkThrottlesThroughput) {
  // A deliberately narrow 1-bit/clock link must slow the pipeline: the
  // bottleneck becomes pixel_bits cycles per crossing pixel.
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const std::uint64_t solo = simulate(p, {}, 2).steady_interval;
  SimConfig narrow;
  narrow.cut_after_nodes = {1};  // after the first bnact (2-bit codes)
  narrow.link_bits_per_cycle = 1;
  const SimResult r = simulate(p, narrow, 2);
  EXPECT_GT(r.steady_interval, solo);
  // The crossing stream is 8 channels x 2 bits = 16 cycles per pixel over
  // a 12x12 map: at least 16 * 144 cycles per image at the link alone.
  EXPECT_GE(r.steady_interval, 16u * 12 * 12);
}

TEST(SimMultiDfe, WideLinkIsTransparentOnTiny) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const std::uint64_t solo = simulate(p, {}, 2).steady_interval;
  SimConfig cfg;
  cfg.cut_after_nodes = {1, 3};
  cfg.link_bits_per_cycle = 1024;  // wider than any pixel
  const SimResult r = simulate(p, cfg, 2);
  // Pixel-per-clock links add latency but cannot change the interval.
  EXPECT_EQ(r.steady_interval, solo);
}

}  // namespace
}  // namespace qnn
