#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "models/zoo.h"
#include "nn/reference.h"
#include "test_util.h"
#include "train/qat.h"

namespace qnn {
namespace {

class TempFile {
 public:
  explicit TempFile(std::string path) : path_(std::move(path)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Serialize, RoundTripPreservesInference) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 9);
  const TempFile file("/tmp/qnn_roundtrip.qnn");
  save_network(file.path(), spec, params);

  const LoadedNetwork loaded = load_network(file.path());
  EXPECT_EQ(loaded.spec.name, spec.name);
  EXPECT_EQ(loaded.spec.input, spec.input);
  EXPECT_EQ(loaded.spec.act_bits, spec.act_bits);
  EXPECT_EQ(loaded.pipeline.size(), pipeline.size());

  const ReferenceExecutor original(pipeline, params);
  const ReferenceExecutor reloaded(loaded.pipeline, loaded.params);
  Rng rng(10);
  for (int i = 0; i < 5; ++i) {
    const IntTensor img = testutil::random_image(12, 12, 3, rng);
    EXPECT_EQ(reloaded.run(img), original.run(img)) << "image " << i;
  }
}

TEST(Serialize, RoundTripCoversEveryBlockKind) {
  NetworkSpec spec;
  spec.name = "all_blocks";
  spec.input = Shape{16, 16, 3};
  spec.act_bits = 3;
  spec.conv(8, 3, 1, 1);
  spec.max_pool(2, 2);
  spec.residual(8, 1);
  spec.residual(16, 2);
  spec.avg_pool_global();
  spec.dense(6, false);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 11);
  const TempFile file("/tmp/qnn_allblocks.qnn");
  save_network(file.path(), spec, params);
  const LoadedNetwork loaded = load_network(file.path());
  ASSERT_EQ(loaded.spec.blocks.size(), spec.blocks.size());
  EXPECT_EQ(loaded.pipeline.output_shape(), pipeline.output_shape());
  Rng rng(12);
  const IntTensor img = testutil::random_image(16, 16, 3, rng);
  EXPECT_EQ(ReferenceExecutor(loaded.pipeline, loaded.params).run(img),
            ReferenceExecutor(pipeline, params).run(img));
}

TEST(Serialize, ThresholdsAreRefoldedOnLoad) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 13);
  const TempFile file("/tmp/qnn_refold.qnn");
  save_network(file.path(), spec, params);
  const LoadedNetwork loaded = load_network(file.path());
  for (std::size_t i = 0; i < params.bnacts.size(); ++i) {
    const auto& a = params.bnacts[i].thresholds;
    const auto& b = loaded.params.bnacts[i].thresholds;
    ASSERT_EQ(a.channels(), b.channels());
    for (int c = 0; c < a.channels(); ++c) {
      EXPECT_EQ(a.at(c), b.at(c)) << "bank " << i << " channel " << c;
    }
  }
}

TEST(Serialize, TrainedModelSurvivesDisk) {
  const auto all = make_cluster_task(3, 8, 60, 12.0, 44);
  const auto [train, test] = split_dataset(all, 0.75);
  QatConfig cfg;
  cfg.epochs = 25;
  cfg.seed = 4;
  QatMlp mlp(train.dim, train.classes, cfg);
  mlp.fit(train);
  const auto [pipeline, params] = mlp.export_network();

  // Rebuild the spec the exporter used, persist, reload, compare logits.
  NetworkSpec spec;
  spec.name = "qat_mlp";
  spec.input = Shape{1, 1, train.dim};
  spec.act_bits = cfg.act_bits;
  for (int h : cfg.hidden) spec.dense(h);
  spec.dense(train.classes, false);

  const TempFile file("/tmp/qnn_trained.qnn");
  save_network(file.path(), spec, params);
  const LoadedNetwork loaded = load_network(file.path());
  const ReferenceExecutor a(pipeline, params);
  const ReferenceExecutor b(loaded.pipeline, loaded.params);
  for (int i = 0; i < 10; ++i) {
    const IntTensor& img = test.images[static_cast<std::size_t>(i)];
    EXPECT_EQ(a.run(img), b.run(img));
  }
}

TEST(Serialize, RejectsWrongMagic) {
  const TempFile file("/tmp/qnn_badmagic.qnn");
  std::ofstream out(file.path(), std::ios::binary);
  out << "NOPE and then some bytes";
  out.close();
  EXPECT_THROW((void)load_network(file.path()), Error);
}

TEST(Serialize, RejectsTruncatedFile) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 14);
  const TempFile file("/tmp/qnn_trunc.qnn");
  save_network(file.path(), spec, params);
  // Chop the file at 60%.
  std::ifstream in(file.path(), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
  out.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size() * 3 / 5));
  out.close();
  EXPECT_THROW((void)load_network(file.path()), Error);
}

TEST(Serialize, RejectsVersionMismatch) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 15);
  const TempFile file("/tmp/qnn_version.qnn");
  save_network(file.path(), spec, params);
  // Bump the version field (bytes 4..7).
  std::fstream f(file.path(),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(4);
  const std::uint32_t bogus = 999;
  f.write(reinterpret_cast<const char*>(&bogus), sizeof bogus);
  f.close();
  EXPECT_THROW((void)load_network(file.path()), Error);
}

TEST(Serialize, RejectsCorruptFilterTailBits) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 16);
  const TempFile file("/tmp/qnn_tail.qnn");
  save_network(file.path(), spec, params);
  // First conv filter is 3*3*3 = 27 bits: flip a bit beyond position 27
  // inside its first stored word. The word starts right after the spec;
  // easier: set the whole word to all-ones, which must trip the check.
  std::ifstream in(file.path(), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Find the first conv bank: search for the filter shape triple (8,3,3)
  // written as little-endian i32s after the spec — then the words follow.
  const char needle[12] = {8, 0, 0, 0, 3, 0, 0, 0, 3, 0, 0, 0};
  const auto pos = bytes.find(std::string(needle, sizeof needle));
  ASSERT_NE(pos, std::string::npos);
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[pos + sizeof needle + i] = static_cast<char>(0xff);
  }
  std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_THROW((void)load_network(file.path()), Error);
}

TEST(Serialize, SaveValidatesSpecParamsCoherence) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  NetworkParams wrong;  // empty banks
  EXPECT_THROW(save_network("/tmp/qnn_never.qnn", spec, wrong), Error);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW((void)load_network("/tmp/definitely_missing.qnn"), Error);
}

}  // namespace
}  // namespace qnn
