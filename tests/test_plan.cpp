// Plan artifact tests: CompiledPlan serialization round-trips, fingerprint
// stability, the PlanCache hit/miss/corrupt-file contract, the autotuner's
// verify-before-run invariant, and end-to-end bit-exactness of tuned plans
// (including a server cold start that loads one from a warm cache).
#include "plan/compiled_plan.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "host/session.h"
#include "models/zoo.h"
#include "nn/params.h"
#include "nn/reference.h"
#include "plan/autotune.h"
#include "plan/cache.h"
#include "plan/json.h"
#include "plan/pool_shape.h"
#include "serve/server.h"
#include "test_util.h"
#include "verify/graph_check.h"

namespace qnn {
namespace {

namespace fs = std::filesystem;

struct TinyNet {
  NetworkSpec spec = models::tiny(12, 4, 2);
  Pipeline pipeline = expand(spec);
  NetworkParams params = NetworkParams::random(pipeline, 60);
  SessionConfig session_config = [] {
    SessionConfig cfg;
    cfg.fast_estimate = true;
    return cfg;
  }();

  [[nodiscard]] std::vector<IntTensor> batch(int n, std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<IntTensor> images;
    images.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      images.push_back(testutil::random_image(12, 12, 3, rng));
    }
    return images;
  }
};

/// Scratch directory under the test's working directory (the build tree);
/// wiped on construction so reruns start clean.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name) : path(name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// ---- serialization --------------------------------------------------------

TEST(PlanJson, RoundTripIsByteIdentical) {
  const TinyNet net;
  EngineOptions opts;
  opts.burst = 128;
  opts.adaptive_burst = false;
  opts.executor = ExecutorKind::kPooled;
  opts.pool_threads = 3;
  const CompiledPlan plan =
      compile_plan(net.pipeline, opts, /*slo_us=*/1500, "engine");

  const std::string text = to_json(plan);
  const CompiledPlan reparsed = plan_from_json(text);
  // The contract plan/json.h documents: serialize(parse(serialize(p)))
  // is byte-identical, so cached files never churn on rewrite.
  EXPECT_EQ(to_json(reparsed), text);

  EXPECT_EQ(reparsed.key, plan.key);
  EXPECT_EQ(reparsed.model, plan.model);
  EXPECT_EQ(reparsed.burst, plan.burst);
  EXPECT_EQ(reparsed.adaptive_burst, plan.adaptive_burst);
  EXPECT_EQ(reparsed.executor, plan.executor);
  EXPECT_EQ(reparsed.pool_threads, plan.pool_threads);
  EXPECT_EQ(reparsed.backend, plan.backend);
  EXPECT_EQ(reparsed.fifos.streams.size(), plan.fifos.streams.size());
  EXPECT_EQ(reparsed.link_bursts.size(), plan.link_bursts.size());
}

TEST(PlanJson, RejectsMalformedAndWrongVersion) {
  const TinyNet net;
  CompiledPlan plan = compile_plan(net.pipeline);
  EXPECT_THROW((void)plan_from_json("not json at all"), Error);
  plan.version = kPlanFormatVersion + 1;
  EXPECT_THROW((void)plan_from_json(to_json(plan)), Error);
}

// ---- fingerprint ----------------------------------------------------------

TEST(PlanKeyTest, StableAcrossRunsAndLoweringCalls) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const PlanKey a = plan_key(expand(spec), /*slo_us=*/0);
  const PlanKey b = plan_key(expand(spec), /*slo_us=*/0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(a.machine, machine_signature());
}

TEST(PlanKeyTest, ChangesOnModelEditButNotOnRename) {
  const Pipeline base = expand(models::tiny(12, 4, 2));
  // Any structural edit — input size, class count — orphans a tuned plan.
  EXPECT_NE(model_hash(base), model_hash(expand(models::tiny(16, 4, 2))));
  EXPECT_NE(model_hash(base), model_hash(expand(models::tiny(12, 8, 2))));
  // A pure rename does not: node names are excluded from the hash.
  Pipeline renamed = base;
  renamed.nodes.front().name = "totally_different_name";
  EXPECT_EQ(model_hash(base), model_hash(renamed));
  // The SLO is part of the fingerprint string: a latency-tuned plan never
  // shadows a throughput-tuned one.
  EXPECT_NE(plan_key(base, 0).str(), plan_key(base, 2000).str());
}

// ---- cache ----------------------------------------------------------------

TEST(PlanCacheTest, StoreThenLoadHitsBitIdentically) {
  const TinyNet net;
  const ScratchDir dir("test_plan_cache.store");
  EngineOptions opts;
  opts.burst = 256;
  const CompiledPlan plan = compile_plan(net.pipeline, opts);

  const PlanCache cache(dir.path.string());
  ASSERT_TRUE(cache.enabled());
  ASSERT_TRUE(cache.store(plan));
  const auto loaded = cache.load(plan.key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(to_json(*loaded), to_json(plan));
}

TEST(PlanCacheTest, MissesOnUnknownKeyCorruptFileAndDisabledCache) {
  const TinyNet net;
  const ScratchDir dir("test_plan_cache.miss");
  const CompiledPlan plan = compile_plan(net.pipeline);
  const PlanCache cache(dir.path.string());
  ASSERT_TRUE(cache.store(plan));

  // Unknown key: never tuned this (model, slo) pair.
  EXPECT_FALSE(cache.load(plan_key(net.pipeline, /*slo_us=*/999)).has_value());

  // Corrupt file: a truncated or garbage entry is a MISS, never an error —
  // a broken cache must not break a cold start.
  {
    std::ofstream out(cache.path_for(plan.key), std::ios::trunc);
    out << "{\"version\": garbage";
  }
  EXPECT_FALSE(cache.load(plan.key).has_value());

  // Disabled cache (empty dir): lookups miss, stores are no-ops.
  const PlanCache disabled{std::string()};
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.store(plan));
  EXPECT_FALSE(disabled.load(plan.key).has_value());
}

// ---- autotuner ------------------------------------------------------------

TEST(Autotune, EveryCandidateIsVerifyCleanBeforeItMayRun) {
  const TinyNet net;
  AutotuneConfig config;
  config.live_calibration = false;  // oracle-only: fast and deterministic
  config.bursts = {64, 128};
  config.fifo_capacities = {0};
  config.pool_threads = {};
  const AutotuneResult result = autotune(net.pipeline, net.params, config);

  ASSERT_FALSE(result.candidates.empty());
  EXPECT_TRUE(result.candidates.front().verified);  // the default plan
  int verified = 0;
  for (const AutotuneCandidate& c : result.candidates) {
    if (!c.verified) continue;  // pruned by the analyzer, never executed
    ++verified;
    // Re-prove the invariant: the exact plan the candidate would run
    // passes verify/ with the plan attached (the QNN-D305 path included).
    EngineOptions opts;
    c.plan.apply_engine(opts);
    opts.plan = &c.plan;
    const Report report = verify_graph(net.pipeline, &net.params, opts);
    EXPECT_TRUE(report.ok()) << c.plan.fingerprint();
  }
  EXPECT_EQ(verified, result.evaluated);
  EXPECT_EQ(static_cast<int>(result.candidates.size()) - verified,
            result.pruned);
  // The winner never loses to the default on the deciding metric.
  EXPECT_GE(result.best_ips, result.default_ips);
  EXPECT_TRUE(result.best.matches(net.pipeline));
}

TEST(Autotune, TunedPlanIsBitExactAgainstDefaultOnTheZooModel) {
  const TinyNet net;
  AutotuneConfig config;
  config.live_calibration = false;
  config.bursts = {64, 256};
  config.fifo_capacities = {0, 4096};
  config.pool_threads = {2};
  const AutotuneResult result = autotune(net.pipeline, net.params, config);

  SessionConfig default_cfg = net.session_config;
  default_cfg.plan = std::make_shared<const CompiledPlan>(
      result.candidates.front().plan);
  SessionConfig tuned_cfg = net.session_config;
  tuned_cfg.plan = std::make_shared<const CompiledPlan>(result.best);

  DfeSession default_session =
      DfeSession::compile(net.spec, net.params, default_cfg);
  DfeSession tuned_session =
      DfeSession::compile(net.spec, net.params, tuned_cfg);
  const ReferenceExecutor ref(net.pipeline, net.params);

  const std::vector<IntTensor> images = net.batch(6, 61);
  const std::vector<IntTensor> a = default_session.infer_batch(images);
  const std::vector<IntTensor> b = tuned_session.infer_batch(images);
  ASSERT_EQ(a.size(), images.size());
  ASSERT_EQ(b.size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << i;
    EXPECT_EQ(a[i], ref.run(images[i])) << i;  // and both match golden
  }
}

// ---- server cold start ----------------------------------------------------

TEST(PlanCacheTest, ServerColdStartLoadsCachedPlanBitExactly) {
  const TinyNet net;
  const ScratchDir dir("test_plan_cache.coldstart");
  // Persist a deliberately non-default plan, as qnn_tune would.
  EngineOptions opts;
  opts.burst = 256;
  opts.executor = ExecutorKind::kPooled;
  opts.pool_threads = 2;
  const CompiledPlan tuned = compile_plan(net.pipeline, opts);
  ASSERT_TRUE(PlanCache(dir.path.string()).store(tuned));

  SessionConfig warm = net.session_config;
  warm.plan_cache_dir = dir.path.string();
  ServerConfig server_cfg;
  server_cfg.max_batch = 4;
  server_cfg.batch_timeout_us = 200;

  DfeServer warm_server(net.spec, net.params, server_cfg, warm);
  DfeServer cold_server(net.spec, net.params, server_cfg,
                        net.session_config);

  // The hit is observable: one kPlanCacheHit event carrying the
  // fingerprint, logged before any replica compiles.
  bool hit = false;
  for (const std::string& event : warm_server.metrics().events()) {
    if (event.find(kPlanCacheHit) != std::string::npos) {
      EXPECT_NE(event.find(tuned.fingerprint()), std::string::npos) << event;
      hit = true;
    }
  }
  EXPECT_TRUE(hit) << "cold start with a warm cache must log "
                   << kPlanCacheHit;
  for (const std::string& event : cold_server.metrics().events()) {
    EXPECT_EQ(event.find(kPlanCacheHit), std::string::npos) << event;
  }

  // And the loaded plan changes nothing observable: bit-exact vs the
  // default-plan server and the golden reference.
  const ReferenceExecutor ref(net.pipeline, net.params);
  for (const IntTensor& image : net.batch(5, 62)) {
    const InferenceResult a = warm_server.submit(image);
    const InferenceResult b = cold_server.submit(image);
    ASSERT_EQ(a.status, ServerStatus::kOk) << to_string(a.status);
    ASSERT_EQ(b.status, ServerStatus::kOk) << to_string(b.status);
    EXPECT_EQ(a.logits, b.logits);
    EXPECT_EQ(a.logits, ref.run(image));
  }
}

TEST(PlanCacheTest, ColdStartRejectsCachedPlanThatFailsTheLint) {
  const TinyNet net;
  const ScratchDir dir("test_plan_cache.reject");
  // A plan that parses and carries the RIGHT fingerprint, but whose stream
  // table was skewed after tuning (burst above its own FIFO): the cache
  // layer cannot see this — only the verify/plan_check.h lint can.
  CompiledPlan skewed = compile_plan(net.pipeline);
  skewed.fifos.streams[0].burst = skewed.fifos.streams[0].capacity + 1;
  ASSERT_TRUE(PlanCache(dir.path.string()).store(skewed));

  // A session cold start treats the rejected plan as a MISS and derives a
  // fresh plan — it must not throw and must stay bit-exact.
  SessionConfig warm = net.session_config;
  warm.plan_cache_dir = dir.path.string();
  DfeSession session = DfeSession::compile(net.spec, net.params, warm);
  const ReferenceExecutor ref(net.pipeline, net.params);
  for (const IntTensor& image : net.batch(3, 64)) {
    EXPECT_EQ(session.infer(image), ref.run(image));
  }

  // A server cold start does the same, and the rejection is observable:
  // one plan-cache-rejected event (with the lint verdict), no cache-hit
  // event, and inference still works.
  DfeServer server(net.spec, net.params, ServerConfig{}, warm);
  bool rejected = false;
  for (const std::string& event : server.metrics().events()) {
    EXPECT_EQ(event.find(kPlanCacheHit), std::string::npos) << event;
    if (event.find("plan-cache-rejected") != std::string::npos) {
      EXPECT_NE(event.find(skewed.fingerprint()), std::string::npos) << event;
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected) << "the lint rejection must be logged";
  const IntTensor image = net.batch(1, 65).front();
  const InferenceResult res = server.submit(image);
  ASSERT_EQ(res.status, ServerStatus::kOk) << to_string(res.status);
  EXPECT_EQ(res.logits, ref.run(image));
}

// ---- pool shaping ---------------------------------------------------------

TEST(PoolShape, DerivesFastSlicesAndOneShadow) {
  PoolShapeConfig config;
  config.target_qps = 1000.0;
  config.tight_fraction = 0.5;
  config.replica_qps = 400.0;
  config.want_shadow = true;
  const std::vector<PoolSlice> pool =
      shape_pool(config, backend_registry());
  ASSERT_FALSE(pool.empty());
  EXPECT_EQ(backend_registry().at(pool.front().backend).tier(),
            BackendTier::kFast);
  int shadows = 0;
  int total = 0;
  for (const PoolSlice& slice : pool) {
    EXPECT_GE(slice.count, 1) << slice.backend;
    total += slice.count;
    shadows += backend_registry().at(slice.backend).tier() ==
               BackendTier::kShadow;
  }
  EXPECT_EQ(shadows, 1);
  EXPECT_LE(total, config.max_replicas + 1);  // +1 for the shadow replica

  PoolShapeConfig infeasible = config;
  infeasible.replica_qps = 0.0;
  EXPECT_THROW((void)shape_pool(infeasible, backend_registry()), Error);
}

}  // namespace
}  // namespace qnn
