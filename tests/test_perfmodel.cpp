#include <gtest/gtest.h>

#include "models/zoo.h"
#include "perfmodel/fpga_estimate.h"
#include "perfmodel/gpu_model.h"

namespace qnn {
namespace {

TEST(GpuSpecs, MatchTableIIa) {
  const GpuSpec p100 = tesla_p100();
  EXPECT_EQ(p100.cuda_cores, 3584);
  EXPECT_NEAR(p100.core_clock_ghz, 1.480, 1e-9);
  const GpuSpec g1080 = gtx1080();
  EXPECT_EQ(g1080.cuda_cores, 2560);
  EXPECT_NEAR(g1080.core_clock_ghz, 1.733, 1e-9);
}

TEST(GpuModel, EfficiencyRisesWithBatch) {
  const GpuSpec g = tesla_p100();
  EXPECT_NEAR(g.efficiency(1), g.batch1_efficiency, 1e-12);
  EXPECT_LT(g.efficiency(1), g.efficiency(16));
  EXPECT_LT(g.efficiency(16), g.efficiency(256));
  EXPECT_LE(g.efficiency(1 << 20), g.peak_efficiency);
}

TEST(GpuModel, LayerSequentialSum) {
  const Pipeline p = expand(models::vgg_like(32, 10, 2));
  const GpuRunEstimate est = estimate_gpu(p, tesla_p100());
  double sum = 0.0;
  for (const auto& l : est.layers) sum += l.seconds;
  EXPECT_NEAR(est.seconds_per_image, sum, 1e-12);
  // One launch per conv/pool layer; BnAct and Add are folded.
  int window_ops = 0;
  for (const auto& n : p.nodes) window_ops += n.is_window_op();
  EXPECT_EQ(est.launches, window_ops);
}

TEST(GpuModel, DepthPenaltyMatchesSectionIVB2) {
  // "twice as many layers would take twice more time, even if GPU
  // resources are not fully utilized": ResNet-18 costs ~42.5% more than
  // AlexNet on the GPU, far above the DFE's premium.
  const auto res = estimate_gpu(expand(models::resnet18(224, 1000, 2)),
                                tesla_p100());
  const auto alex = estimate_gpu(expand(models::alexnet(224, 1000, 2)),
                                 tesla_p100());
  const double ratio = res.seconds_per_image / alex.seconds_per_image;
  EXPECT_GT(ratio, 1.25);
  EXPECT_LT(ratio, 1.60);  // the paper measured 1.425
}

TEST(GpuModel, BatchingAmortizesLaunchAndWeights) {
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  const GpuSpec gpu = tesla_p100();
  const double t1 = estimate_gpu(p, gpu, 1).seconds_per_image;
  const double t128 = estimate_gpu(p, gpu, 128).seconds_per_image;
  // "Modern GPUs can process at least 128-256 inputs with very small
  // inference time degradation" — large throughput gain per image.
  EXPECT_GT(t1 / t128, 3.0);
  EXPECT_LT(t1 / t128, 12.0);
}

TEST(GpuModel, FcLayersAreMemoryBound) {
  const Pipeline p = expand(models::alexnet(224, 1000, 2));
  const GpuRunEstimate est = estimate_gpu(p, tesla_p100());
  bool found_fc = false;
  for (const auto& l : est.layers) {
    if (l.flops > 0.0 && l.bytes > 100e6) {  // fc6: 151 MB of weights
      EXPECT_EQ(static_cast<int>(l.bound),
                static_cast<int>(GpuBound::Memory));
      found_fc = true;
    }
  }
  EXPECT_TRUE(found_fc);
}

TEST(DfePower, AnchoredToTableIVa) {
  // Table IVa reports ~12 W for the VGG-like design on one DFE.
  const auto est = estimate_fpga(expand(models::vgg_like(32, 10, 2)));
  EXPECT_EQ(est.num_dfes, 1);
  EXPECT_NEAR(est.power_w, 12.0, 1.5);
}

TEST(DfePower, MonotoneInUtilization) {
  const DfeBoard board = max4_maia();
  EXPECT_LT(dfe_power_w(board, 0.2), dfe_power_w(board, 0.8));
  EXPECT_NEAR(dfe_power_w(board, 0.0), board.idle_power_w, 1e-12);
  EXPECT_NEAR(dfe_power_w(board, 1.0), board.max_power_w, 1e-12);
  EXPECT_NEAR(dfe_power_w(board, 5.0), board.max_power_w, 1e-12);  // clamps
}

TEST(DfePower, AlexNetRisesWithMultipleDfes) {
  // §IV-B1: "For AlexNet the power consumption of the DFE increases,
  // since three DFEs are needed to fit the network."
  const auto vgg = estimate_fpga(expand(models::vgg_like(32, 10, 2)));
  const auto alex = estimate_fpga(expand(models::alexnet(224, 1000, 2)));
  EXPECT_GT(alex.num_dfes, vgg.num_dfes);
  EXPECT_GT(alex.power_w, 1.8 * vgg.power_w);
}

// --------------------------------------------------------------- Figure 5

TEST(Fig5, DfeBeatsGpuAt32x32) {
  // "for an input size of 32x32, our network is 12% faster than the same
  // network running on a GPU" (kernel-invocation overhead dominates).
  const Pipeline p = expand(models::vgg_like(32, 10, 2));
  const auto dfe = estimate_fpga(p);
  for (const auto& gpu : {tesla_p100(), gtx1080()}) {
    EXPECT_LT(dfe.seconds_per_image,
              estimate_gpu(p, gpu).seconds_per_image)
        << gpu.name;
  }
}

TEST(Fig5, GpuWinsAtLargeInputs) {
  for (int size : {96, 144}) {
    const Pipeline p = expand(models::vgg_like(size, 10, 2));
    const auto dfe = estimate_fpga(p);
    EXPECT_GT(dfe.seconds_per_image,
              estimate_gpu(p, tesla_p100()).seconds_per_image)
        << size;
  }
}

TEST(Fig5, ResNetDfeRoughlyFourTimesSlowerThanGpu) {
  // §I: "4x slower for ImageNet, when compared to the same NN on the
  // latest Nvidia GPUs."
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  const double ratio = estimate_fpga(p).seconds_per_image /
                       estimate_gpu(p, tesla_p100()).seconds_per_image;
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 6.5);
}

// --------------------------------------------------------------- Figure 7

TEST(Fig7, DfePowerAtLeastFifteenTimesLowerForVgg) {
  // "power consumption of the DFE is significantly lower (at least 15x)
  // for VGG-like networks."
  for (int size : {32, 96, 144}) {
    const auto dfe = estimate_fpga(expand(models::vgg_like(size, 10, 2)));
    EXPECT_GT(tesla_p100().inference_power_w() / dfe.power_w, 14.0) << size;
    EXPECT_GT(gtx1080().inference_power_w() / dfe.power_w, 10.0) << size;
  }
}

TEST(Fig7, ResNetPowerRatioNearFive) {
  // §I: ResNet-18 "consumes 5x less power ... when compared to the same
  // NN on the latest Nvidia GPUs."
  const auto dfe = estimate_fpga(expand(models::resnet18(224, 1000, 2)));
  const double ratio = tesla_p100().inference_power_w() / dfe.power_w;
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 6.5);
}

// --------------------------------------------------------------- Figure 8

TEST(Fig8, EnergyUpToTwentyTimesBetterOnSingleDfe) {
  // "The energy consumption of a single-picture inference ... is up to
  // 20x better for FPGAs."
  const Pipeline p = expand(models::vgg_like(32, 10, 2));
  const auto dfe = estimate_fpga(p);
  const auto gpu = estimate_gpu(p, tesla_p100());
  const double ratio = gpu.energy_per_image_j / dfe.energy_per_image_j;
  EXPECT_GT(ratio, 15.0);
  EXPECT_LT(ratio, 30.0);
}

TEST(Fig8, MultiDfeAlexNetStillBeatsGpuEnergy) {
  // "even when more than one FPGA is used, the energy consumption was at
  // least 50% less compared to GPUs" — our model preserves the ordering
  // for AlexNet (the margin is smaller; see EXPERIMENTS.md on the paper's
  // internal inconsistency between its power and runtime ratios).
  const Pipeline p = expand(models::alexnet(224, 1000, 2));
  const auto dfe = estimate_fpga(p);
  const auto gpu = estimate_gpu(p, tesla_p100());
  EXPECT_LT(dfe.energy_per_image_j, gpu.energy_per_image_j);
}

TEST(FpgaEstimate, AnalyticFastPathAgreesWithCycleSim) {
  const Pipeline p = expand(models::vgg_like(96, 10, 2));
  const auto slow = estimate_fpga(p, {}, {}, max4_maia(), true);
  const auto fast = estimate_fpga(p, {}, {}, max4_maia(), false);
  EXPECT_NEAR(fast.seconds_per_image / slow.seconds_per_image, 1.0, 0.05);
}

TEST(FpgaEstimate, EnergyIsPowerTimesTime) {
  const auto est = estimate_fpga(expand(models::vgg_like(32, 10, 2)));
  EXPECT_NEAR(est.energy_per_image_j,
              est.power_w * est.seconds_per_image, 1e-12);
  EXPECT_NEAR(est.images_per_second * est.seconds_per_image, 1.0, 1e-9);
}

}  // namespace
}  // namespace qnn
