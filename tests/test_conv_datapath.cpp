// Randomized property suite pinning the word-packed incremental conv
// datapath (bit-plane line buffers + splice window assembly + vec_ops SIMD
// sweep) to the plain integer reference reference_pm1_dot, across
// activation widths 1..8, window lengths chosen to straddle word
// boundaries (63/64/65/127/129), all-padding windows, strides, multi-image
// streams, and every SIMD dispatch level available on the host. The
// scalar-pack datapath is held to the same reference, so the two datapaths
// are transitively bit-exact against each other.
#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "core/bitplanes.h"
#include "core/simd/vec_ops.h"
#include "dataflow/kernels.h"
#include "test_util.h"

namespace qnn {
namespace {

Node conv_node(Shape in, int out_c, int k, int stride, int pad, int in_bits) {
  Node n;
  n.kind = NodeKind::Conv;
  n.name = "conv_dp";
  n.in = in;
  n.out = conv_out_shape(in, out_c, k, stride, pad);
  n.in_bits = in_bits;
  n.out_bits = preact_bits(static_cast<std::int64_t>(k) * k * in.c, in_bits);
  n.k = k;
  n.stride = stride;
  n.pad = pad;
  n.param = 0;
  return n;
}

/// Plain integer convolution via reference_pm1_dot per output position:
/// gather the (dy, dx, ci) window with zero padding, dot against the
/// filter's +-1 weights. No bit packing anywhere.
std::vector<std::int32_t> reference_conv(const Node& n, const FilterBank& fb,
                                         const IntTensor& img) {
  const auto win =
      static_cast<std::size_t>(n.k) * static_cast<std::size_t>(n.k) *
      static_cast<std::size_t>(n.in.c);
  std::vector<std::int32_t> out;
  std::vector<std::int32_t> codes(win);
  std::vector<std::int8_t> w_pm1(win);
  for (int oy = 0; oy < n.out.h; ++oy) {
    for (int ox = 0; ox < n.out.w; ++ox) {
      std::size_t i = 0;
      for (int dy = 0; dy < n.k; ++dy) {
        for (int dx = 0; dx < n.k; ++dx) {
          const int y = oy * n.stride + dy - n.pad;
          const int x = ox * n.stride + dx - n.pad;
          const bool in_map =
              y >= 0 && y < n.in.h && x >= 0 && x < n.in.w;
          for (int ci = 0; ci < n.in.c; ++ci) {
            codes[i++] = in_map ? img.at(y, x, ci) : 0;
          }
        }
      }
      for (int o = 0; o < n.out.c; ++o) {
        i = 0;
        for (int dy = 0; dy < n.k; ++dy) {
          for (int dx = 0; dx < n.k; ++dx) {
            for (int ci = 0; ci < n.in.c; ++ci) {
              w_pm1[i++] =
                  static_cast<std::int8_t>(fb.signed_weight(o, dy, dx, ci));
            }
          }
        }
        out.push_back(reference_pm1_dot(w_pm1, codes));
      }
    }
  }
  return out;
}

/// Run a ConvKernel over `images` streamed back to back and collect every
/// output value.
std::vector<std::int32_t> run_conv(const Node& n, const FilterBank& fb,
                                   const std::vector<IntTensor>& images) {
  Stream sin(256, 16, "in");
  Stream sout(256, 32, "out");
  ConvKernel kernel(n, fb, sin, sout);
  std::thread feeder([&] {
    for (const auto& img : images) {
      for (std::int64_t i = 0; i < img.size(); ++i) sin.push(img[i]);
    }
    sin.close();
  });
  kernel.run();
  feeder.join();
  std::vector<std::int32_t> out;
  std::int32_t v = 0;
  while (sout.pop(v)) out.push_back(v);
  return out;
}

/// Restores the process-wide datapath/SIMD selectors after each test.
class ConvDatapathTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_conv_datapath(ConvDatapath::kPacked);
    simd::set_level(std::nullopt);
  }
};

struct Geometry {
  Shape in;
  int out_c;
  int k;
  int stride;
  int pad;
};

// Channel counts 63/64/65 with k=1 put the per-plane window length exactly
// at/around one word; 3*3*c geometries put it around 2 words (127/129 via
// c=14 is not integral, so use k=1 c=127/129 directly). k=2 pad=2 makes
// entire windows (corners) pure padding; stride 2 exercises row-phase
// recycling; k=h=w is the dense/global case (window == whole padded map).
const Geometry kGeometries[] = {
    {{4, 5, 3}, 3, 3, 1, 1},    // classic 3x3 same-pad
    {{3, 4, 63}, 2, 1, 1, 0},   // 63-bit planes (sub-word tail)
    {{3, 3, 64}, 2, 1, 1, 0},   // exactly one word per plane
    {{2, 3, 65}, 2, 1, 1, 0},   // word + 1-bit straddle
    {{2, 2, 127}, 2, 1, 1, 0},  // two words minus one
    {{2, 2, 129}, 2, 1, 1, 0},  // two words plus one
    {{4, 4, 4}, 2, 2, 1, 2},    // pad 2 > k-1: all-padding windows exist
    {{5, 5, 3}, 2, 3, 2, 1},    // strided scan
    {{6, 5, 2}, 3, 2, 2, 0},    // strided, even k, no pad
    {{3, 3, 5}, 2, 3, 1, 0},    // dense: window == whole map
};

TEST_F(ConvDatapathTest, PackedMatchesReferenceAcrossBitsAndGeometries) {
  Rng rng(0xdada);
  for (int bits = 1; bits <= 8; ++bits) {
    for (const auto& g : kGeometries) {
      const Node n = conv_node(g.in, g.out_c, g.k, g.stride, g.pad, bits);
      const FilterBank fb = FilterBank::random(n.filter_shape(), rng);
      const IntTensor img = testutil::random_codes(g.in, bits, rng);
      const auto expect = reference_conv(n, fb, img);
      set_conv_datapath(ConvDatapath::kPacked);
      ASSERT_EQ(run_conv(n, fb, {img}), expect)
          << "bits=" << bits << " in=" << g.in.h << "x" << g.in.w << "x"
          << g.in.c << " k=" << g.k << " s=" << g.stride << " p=" << g.pad;
    }
  }
}

TEST_F(ConvDatapathTest, ScalarPackMatchesReferenceAcrossGeometries) {
  Rng rng(0xdadb);
  set_conv_datapath(ConvDatapath::kScalarPack);
  for (const int bits : {1, 2, 8}) {
    for (const auto& g : kGeometries) {
      const Node n = conv_node(g.in, g.out_c, g.k, g.stride, g.pad, bits);
      const FilterBank fb = FilterBank::random(n.filter_shape(), rng);
      const IntTensor img = testutil::random_codes(g.in, bits, rng);
      ASSERT_EQ(run_conv(n, fb, {img}), reference_conv(n, fb, img))
          << "bits=" << bits << " k=" << g.k;
    }
  }
}

TEST_F(ConvDatapathTest, PackedMatchesReferenceAtEveryDispatchLevel) {
  Rng rng(0xdadc);
  const Node n = conv_node({4, 5, 65}, 3, 3, 1, 1, 2);
  const FilterBank fb = FilterBank::random(n.filter_shape(), rng);
  const IntTensor img = testutil::random_codes(n.in, 2, rng);
  const auto expect = reference_conv(n, fb, img);
  for (const simd::Level level : simd::available_levels()) {
    simd::set_level(level);
    ASSERT_EQ(run_conv(n, fb, {img}), expect)
        << "level=" << simd::level_name(level);
  }
}

TEST_F(ConvDatapathTest, PackedHandlesMultipleImagesBackToBack) {
  Rng rng(0xdadd);
  const Node n = conv_node({3, 4, 5}, 2, 2, 1, 1, 3);
  const FilterBank fb = FilterBank::random(n.filter_shape(), rng);
  std::vector<IntTensor> images;
  std::vector<std::int32_t> expect;
  for (int i = 0; i < 3; ++i) {
    images.push_back(testutil::random_codes(n.in, 3, rng));
    const auto one = reference_conv(n, fb, images.back());
    expect.insert(expect.end(), one.begin(), one.end());
  }
  EXPECT_EQ(run_conv(n, fb, images), expect);
}

TEST_F(ConvDatapathTest, PackedAndScalarPackAgreeOnAllPaddingWindows) {
  // pad = 2 with k = 2: the four corner windows contain no real value at
  // all, so the line buffer rows they read were never written by an
  // ingest — only recycled (zero-cleared).
  Rng rng(0xdade);
  const Node n = conv_node({4, 4, 7}, 2, 2, 1, 2, 2);
  const FilterBank fb = FilterBank::random(n.filter_shape(), rng);
  const IntTensor img = testutil::random_codes(n.in, 2, rng);
  set_conv_datapath(ConvDatapath::kPacked);
  const auto packed = run_conv(n, fb, {img});
  set_conv_datapath(ConvDatapath::kScalarPack);
  const auto scalar = run_conv(n, fb, {img});
  EXPECT_EQ(packed, scalar);
  EXPECT_EQ(packed, reference_conv(n, fb, img));
}

}  // namespace
}  // namespace qnn
