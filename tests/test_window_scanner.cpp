#include "dataflow/window_scanner.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"
#include "core/tensor.h"
#include "test_util.h"

namespace qnn {
namespace {

/// Drive a scanner with a tensor's depth-first stream and collect every
/// completed window keyed by output position.
struct ScanResult {
  std::vector<WindowScanner::Completed> positions;
  std::vector<std::vector<std::int32_t>> windows;
  std::int64_t pad_injections = 0;
  std::int64_t real_values = 0;
};

ScanResult scan(WindowScanner& s, const IntTensor& in) {
  ScanResult r;
  std::int64_t next = 0;
  while (!s.done()) {
    std::int32_t v = 0;
    if (s.next_is_padding()) {
      ++r.pad_injections;
    } else {
      v = in[next++];
      ++r.real_values;
    }
    const auto completed = s.advance(v);
    if (completed) {
      std::vector<std::int32_t> w(
          static_cast<std::size_t>(s.window_values()));
      s.window(*completed, w);
      r.positions.push_back(*completed);
      r.windows.push_back(std::move(w));
    }
  }
  EXPECT_EQ(next, in.size()) << "scanner consumed wrong number of values";
  return r;
}

/// Parameterized sweep over (H, W, C, K, stride, pad) geometries: windows
/// must match a direct gather from the padded tensor, in raster order.
struct Geometry {
  int h, w, c, k, stride, pad;
};

class WindowScannerSweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(WindowScannerSweep, WindowsMatchDirectGather) {
  const Geometry g = GetParam();
  const Shape in_shape{g.h, g.w, g.c};
  Rng rng(1000 + static_cast<std::uint64_t>(g.h * 31 + g.k));
  const IntTensor in = testutil::random_codes(in_shape, 4, rng);
  WindowScanner s(in_shape, g.k, g.stride, g.pad);
  const ScanResult r = scan(s, in);

  const int oh = conv_out_extent(g.h, g.k, g.stride, g.pad);
  const int ow = conv_out_extent(g.w, g.k, g.stride, g.pad);
  ASSERT_EQ(static_cast<int>(r.positions.size()), oh * ow);

  std::size_t idx = 0;
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox, ++idx) {
      EXPECT_EQ(r.positions[idx].oy, oy);
      EXPECT_EQ(r.positions[idx].ox, ox);
      std::size_t wpos = 0;
      for (int dy = 0; dy < g.k; ++dy) {
        for (int dx = 0; dx < g.k; ++dx) {
          for (int ci = 0; ci < g.c; ++ci, ++wpos) {
            const int iy = oy * g.stride + dy - g.pad;
            const int ix = ox * g.stride + dx - g.pad;
            const std::int32_t expect =
                (iy < 0 || iy >= g.h || ix < 0 || ix >= g.w)
                    ? 0
                    : in.at(iy, ix, ci);
            ASSERT_EQ(r.windows[idx][wpos], expect)
                << "window (" << oy << "," << ox << ") offset (" << dy << ","
                << dx << "," << ci << ")";
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WindowScannerSweep,
    ::testing::Values(Geometry{5, 5, 1, 3, 1, 0},   // plain valid conv
                      Geometry{6, 6, 2, 3, 1, 1},   // same-padded
                      Geometry{8, 8, 3, 3, 2, 1},   // strided + padded
                      Geometry{9, 7, 2, 2, 2, 0},   // non-square, even k
                      Geometry{11, 11, 1, 11, 1, 0},// window == input (FC)
                      Geometry{7, 7, 4, 1, 1, 0},   // 1x1 conv
                      Geometry{12, 12, 2, 3, 4, 0}, // stride > k
                      Geometry{10, 10, 1, 7, 2, 3}, // big window, big pad
                      Geometry{4, 4, 2, 2, 2, 1})); // pad with even k

TEST(WindowScanner, PadInjectionCountMatchesFormula) {
  const Shape in{6, 5, 3};
  WindowScanner s(in, 3, 1, 2);
  Rng rng(1);
  const IntTensor t = testutil::random_codes(in, 2, rng);
  const ScanResult r = scan(s, t);
  EXPECT_EQ(r.pad_injections, s.padding_values());
  EXPECT_EQ(r.real_values + r.pad_injections, s.padded_values());
  EXPECT_EQ(s.padding_values(), (10 * 9 - 6 * 5) * 3);
}

TEST(WindowScanner, PaperBufferFormula) {
  // I * (W_padded * (K-1) + K) values (§III-B1b).
  WindowScanner s(Shape{56, 56, 64}, 3, 1, 1);
  EXPECT_EQ(s.paper_buffer_values(), 64 * (58 * 2 + 3));
}

TEST(WindowScanner, ResetAllowsReuseAcrossImages) {
  const Shape in{5, 5, 2};
  WindowScanner s(in, 3, 1, 0);
  Rng rng(2);
  const IntTensor a = testutil::random_codes(in, 4, rng);
  const IntTensor b = testutil::random_codes(in, 4, rng);
  const ScanResult ra = scan(s, a);
  s.reset();
  const ScanResult rb = scan(s, b);
  ASSERT_EQ(ra.windows.size(), rb.windows.size());
  EXPECT_NE(ra.windows, rb.windows);  // different images, different windows
  // Re-scanning image a after reset reproduces the original windows.
  s.reset();
  const ScanResult ra2 = scan(s, a);
  EXPECT_EQ(ra.windows, ra2.windows);
}

TEST(WindowScanner, RejectsOversizedWindow) {
  EXPECT_THROW(WindowScanner(Shape{4, 4, 1}, 7, 1, 0), Error);
}

}  // namespace
}  // namespace qnn
