#include "core/bitvector.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace qnn {
namespace {

TEST(BitVector, SetGetRoundTrip) {
  BitVector v(130);
  EXPECT_EQ(v.bits(), 130);
  EXPECT_EQ(v.words(), 3);
  for (std::int64_t i = 0; i < v.bits(); ++i) EXPECT_FALSE(v.get(i));
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.count(), 3);
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.count(), 2);
}

TEST(BitVector, AndPopcount) {
  BitVector a(100);
  BitVector b(100);
  for (std::int64_t i = 0; i < 100; i += 2) a.set(i, true);   // 50 even bits
  for (std::int64_t i = 0; i < 100; i += 4) b.set(i, true);   // 25 bits
  EXPECT_EQ(a.and_popcount(b), 25);
  EXPECT_EQ(b.and_popcount(a), 25);
  EXPECT_EQ(a.and_popcount(a), 50);
}

TEST(BitVector, Pm1DotAgainstScalarReference) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.next_below(300));
    BitVector a(n);
    BitVector b(n);
    int expect = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const bool ab = rng.next_bool();
      const bool bb = rng.next_bool();
      a.set(i, ab);
      b.set(i, bb);
      expect += (ab ? 1 : -1) * (bb ? 1 : -1);
    }
    EXPECT_EQ(a.pm1_dot(b), expect) << "n=" << n;
  }
}

TEST(BitVector, Pm1DotSelfIsLength) {
  BitVector v(77);
  for (std::int64_t i = 0; i < 77; i += 3) v.set(i, true);
  EXPECT_EQ(v.pm1_dot(v), 77);
}

TEST(BitVector, ClearZeroes) {
  BitVector v(65);
  v.set(3, true);
  v.set(64, true);
  v.clear();
  EXPECT_EQ(v.count(), 0);
  EXPECT_EQ(v.bits(), 65);
}

TEST(BitVector, EmptyVector) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.count(), 0);
}

}  // namespace
}  // namespace qnn
