// Shared helpers for the test suites.
#pragma once

#include <cstdint>

#include "core/rng.h"
#include "core/tensor.h"

namespace qnn::testutil {

/// Tensor of unsigned codes uniform in [0, 2^bits).
inline IntTensor random_codes(const Shape& shape, int bits, Rng& rng) {
  IntTensor t(shape);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<std::int32_t>(
        rng.next_below(std::uint64_t{1} << bits));
  }
  return t;
}

/// 8-bit synthetic image.
inline IntTensor random_image(int h, int w, int c, Rng& rng) {
  return random_codes(Shape{h, w, c}, 8, rng);
}

}  // namespace qnn::testutil
