// vec_ops seam: every compiled+supported SIMD level must agree bit-exactly
// with the scalar reference on random word buffers, including lengths that
// exercise every tail-handling path (0, sub-block, block-multiple, and
// block+tail). Also pins the dispatch contract: kScalar is always present,
// and set_level overrides whatever auto/env dispatch picked.
#include "core/simd/vec_ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/bitops.h"
#include "core/rng.h"

namespace qnn {
namespace {

std::vector<Word> random_words(std::size_t n, Rng& rng) {
  std::vector<Word> v(n);
  for (auto& w : v) w = rng.next_u64();
  return v;
}

TEST(VecOps, ScalarAlwaysAvailable) {
  const auto levels = simd::available_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::Level::kScalar);
  EXPECT_STREQ(simd::vec_ops_at(simd::Level::kScalar).name, "scalar");
  // The dispatched table is one of the available levels.
  const auto& ops = simd::vec_ops();
  EXPECT_TRUE(std::find(levels.begin(), levels.end(), ops.level) !=
              levels.end());
}

TEST(VecOps, LevelNames) {
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx512), "avx512");
}

TEST(VecOps, SetLevelOverridesDispatch) {
  for (const simd::Level level : simd::available_levels()) {
    simd::set_level(level);
    EXPECT_EQ(simd::vec_ops().level, level);
  }
  simd::set_level(std::nullopt);
  const auto levels = simd::available_levels();
  EXPECT_TRUE(std::find(levels.begin(), levels.end(),
                        simd::vec_ops().level) != levels.end());
}

// Lengths covering empty, scalar tails, exact SIMD blocks (4 words for
// AVX2, 8 for AVX-512), and block+tail combinations.
constexpr std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31};

TEST(VecOps, PopcountMatchesScalarAtEveryLevel) {
  const auto& scalar = simd::vec_ops_at(simd::Level::kScalar);
  Rng rng(0xabc1);
  for (const simd::Level level : simd::available_levels()) {
    const auto& ops = simd::vec_ops_at(level);
    for (const std::size_t n : kLengths) {
      for (int trial = 0; trial < 8; ++trial) {
        const auto a = random_words(n, rng);
        EXPECT_EQ(ops.popcount(a.data(), n), scalar.popcount(a.data(), n))
            << simd::level_name(level) << " n=" << n;
      }
    }
  }
}

TEST(VecOps, AndPopcountMatchesScalarAtEveryLevel) {
  const auto& scalar = simd::vec_ops_at(simd::Level::kScalar);
  Rng rng(0xabc2);
  for (const simd::Level level : simd::available_levels()) {
    const auto& ops = simd::vec_ops_at(level);
    for (const std::size_t n : kLengths) {
      for (int trial = 0; trial < 8; ++trial) {
        const auto a = random_words(n, rng);
        const auto b = random_words(n, rng);
        EXPECT_EQ(ops.and_popcount(a.data(), b.data(), n),
                  scalar.and_popcount(a.data(), b.data(), n))
            << simd::level_name(level) << " n=" << n;
      }
    }
  }
}

TEST(VecOps, AccumulatePlaneMatchesScalarAtEveryLevel) {
  const auto& scalar = simd::vec_ops_at(simd::Level::kScalar);
  Rng rng(0xabc3);
  for (const simd::Level level : simd::available_levels()) {
    const auto& ops = simd::vec_ops_at(level);
    for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{9},
                                std::size_t{17}}) {
      const std::size_t filters = 5;
      const std::size_t stride = n + 1;  // gap word between filters
      const auto a = random_words(n, rng);
      const auto w = random_words(stride * filters, rng);
      const auto pop_a =
          static_cast<std::int64_t>(scalar.popcount(a.data(), n));
      for (const int shift : {0, 1, 7}) {
        std::vector<std::int64_t> got(filters, 1000);
        std::vector<std::int64_t> expect(filters, 1000);
        ops.accumulate_plane(a.data(), n, pop_a, w.data(), stride, filters,
                             shift, got.data());
        scalar.accumulate_plane(a.data(), n, pop_a, w.data(), stride, filters,
                                shift, expect.data());
        EXPECT_EQ(got, expect)
            << simd::level_name(level) << " n=" << n << " shift=" << shift;
      }
    }
  }
}

TEST(VecOps, AccumulatePlaneImplementsPm1PlaneSum) {
  // acc[f] += (2*popcount(w_f & a) - popcount(a)) << shift, the per-plane
  // term of the XNOR-popcount dot (§III-B1).
  const auto& ops = simd::vec_ops();
  const std::vector<Word> a = {0b1011, 0};
  const std::vector<Word> w = {0b0011, 0, ~Word{0}, ~Word{0}};
  std::int64_t acc[2] = {0, 0};
  ops.accumulate_plane(a.data(), 2, 3, w.data(), 2, 2, 1, acc);
  // f0: on=2 -> (4-3)<<1 = 2. f1: on=3 -> (6-3)<<1 = 6.
  EXPECT_EQ(acc[0], 2);
  EXPECT_EQ(acc[1], 6);
}

}  // namespace
}  // namespace qnn
