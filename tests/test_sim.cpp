#include "sim/cycle_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "models/zoo.h"

namespace qnn {
namespace {

std::uint64_t busy_of(const Pipeline& p, const SimConfig& cfg,
                      const std::string& name) {
  for (const auto& [n, c] : analytic_busy_cycles(p, cfg)) {
    if (n == name) return c;
  }
  throw Error("kernel not found: " + name);
}

TEST(SimConfig_, CyclesPerOutputFoldsDatapath) {
  SimConfig cfg;
  cfg.datapath_bits = 1152;
  Node n;
  n.kind = NodeKind::Conv;
  n.k = 3;
  n.in = Shape{8, 8, 64};
  n.in_bits = 2;  // 3*3*64*2 = 1152 bit-products: exactly one clock
  EXPECT_EQ(cfg.cycles_per_output(n), 1);
  n.in = Shape{8, 8, 128};  // 2304 -> 2 clocks
  EXPECT_EQ(cfg.cycles_per_output(n), 2);
  n.k = 7;
  n.in = Shape{8, 8, 3};
  n.in_bits = 8;  // first layer: 7*7*3*8 = 1176 -> 2 clocks
  EXPECT_EQ(cfg.cycles_per_output(n), 2);
}

TEST(Analytic, ConvBusyFormula) {
  NetworkSpec spec;
  spec.input = Shape{8, 8, 3};
  spec.conv(4, 3, 1, 1, false);
  const Pipeline p = expand(spec);
  const SimConfig cfg;
  // padded positions 10*10 plus 8*8 output positions * 4 filters * 1 cpo.
  EXPECT_EQ(busy_of(p, cfg, p.node(0).name), 100u + 64u * 4u);
}

TEST(Analytic, PoolNeverHaltsSoBusyIsInputPositions) {
  NetworkSpec spec;
  spec.input = Shape{8, 8, 3};
  spec.max_pool(2, 2);
  const Pipeline p = expand(spec);
  EXPECT_EQ(busy_of(p, SimConfig{}, p.node(0).name), 64u);
}

TEST(Analytic, WeightStreamingAddsHostCycles) {
  NetworkSpec spec;
  spec.input = Shape{8, 8, 32};
  spec.input_bits = 2;
  spec.dense(64, false);  // 8*8*32*64 = 131072 weight bits
  const Pipeline p = expand(spec);
  SimConfig cached;
  cached.weight_cache_capacity_bits = 1 << 20;
  SimConfig streamed;
  streamed.weight_cache_capacity_bits = 1000;
  const std::uint64_t base = busy_of(p, cached, p.node(0).name);
  const std::uint64_t with_ws = busy_of(p, streamed, p.node(0).name);
  EXPECT_EQ(with_ws - base, 131072u / 32u);
}

TEST(Sim, IntervalNeverBelowAnalyticBottleneck) {
  for (const auto& spec :
       {models::tiny(12, 4, 2), models::vgg_like(16, 10, 2)}) {
    const Pipeline p = expand(spec);
    const SimConfig cfg;
    const SimResult r = simulate(p, cfg, 3);
    EXPECT_GE(r.steady_interval, analytic_bottleneck_cycles(p, cfg))
        << spec.name;
    // And for these balanced pipelines it should be close.
    EXPECT_LE(static_cast<double>(r.steady_interval),
              1.25 * static_cast<double>(analytic_bottleneck_cycles(p, cfg)))
        << spec.name;
  }
}

TEST(Sim, LatencyExceedsInterval) {
  const Pipeline p = expand(models::vgg_like(32, 10, 2));
  const SimResult r = simulate(p, {}, 3);
  EXPECT_GT(r.first_image_cycles, r.steady_interval);
}

TEST(Sim, TotalCyclesDecomposeIntoFillPlusIntervals) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const SimResult r = simulate(p, {}, 5);
  const std::uint64_t expect =
      r.first_image_cycles + 4 * r.steady_interval;
  EXPECT_NEAR(static_cast<double>(r.total_cycles),
              static_cast<double>(expect),
              0.1 * static_cast<double>(expect));
}

TEST(Sim, MoreImagesSameInterval) {
  const Pipeline p = expand(models::vgg_like(16, 10, 2));
  const SimResult a = simulate(p, {}, 2);
  const SimResult b = simulate(p, {}, 4);
  EXPECT_EQ(a.steady_interval, b.steady_interval);
}

// ------------------------------------------------------------------ §IV-B4

TEST(SimPaper, ResNet18ClocksPerPictureNearPaperEstimate) {
  // "Our theoretical estimation of the number of clocks per picture for
  // ResNet-18 ... is approximately 1.85e6. This estimation matches the
  // measured time on a real system with a clock frequency of 105 MHz."
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  const SimConfig cfg;
  const SimResult r = simulate(p, cfg, 2);
  EXPECT_GE(r.steady_interval, 1'400'000u);
  EXPECT_LE(r.steady_interval, 2'100'000u);
  // 16.1 ms reported; our model must land in the same regime.
  EXPECT_GE(r.ms_per_image(cfg), 13.0);
  EXPECT_LE(r.ms_per_image(cfg), 19.0);
}

TEST(SimPaper, ResNetVsAlexNetOrderingMatchesTableIII) {
  // Table III: ResNet-18 takes 16.1 ms vs AlexNet 13.7 ms (+17.5%); the
  // streaming architecture absorbs the extra depth cheaply.
  const SimConfig cfg;
  const SimResult res =
      simulate(expand(models::resnet18(224, 1000, 2)), cfg, 2);
  const SimResult alex =
      simulate(expand(models::alexnet(224, 1000, 2)), cfg, 2);
  EXPECT_GT(res.steady_interval, alex.steady_interval);
  const double ratio = static_cast<double>(res.steady_interval) /
                       static_cast<double>(alex.steady_interval);
  EXPECT_LT(ratio, 1.6) << "depth penalty must stay far below the GPU's";
}

TEST(SimPaper, StreamingAbsorbsResNet34DepthEntirely) {
  // The strongest form of the §IV-B2 argument: nearly doubling the depth
  // (ResNet-18 -> ResNet-34) leaves the steady-state interval unchanged,
  // because the first convolution remains the bottleneck stage and every
  // added layer only deepens the (overlapped) pipeline.
  const SimConfig cfg;
  const auto r18 =
      simulate(expand(models::resnet18(224, 1000, 2)), cfg, 2);
  const auto r34 =
      simulate(expand(models::resnet34(224, 1000, 2)), cfg, 2);
  EXPECT_EQ(r34.steady_interval, r18.steady_interval);
  // Latency (pipeline fill) does grow with depth.
  EXPECT_GT(r34.first_image_cycles, r18.first_image_cycles);
  // A layer-sequential platform would pay roughly 2x instead.
}

TEST(SimPaper, AllWorkloadsExceed60Fps) {
  // Conclusion (§V): "achieving more than 60 fps for all types of inputs."
  const SimConfig cfg;
  for (const auto& spec :
       {models::vgg_like(32, 10, 2), models::vgg_like(96, 10, 2),
        models::vgg_like(144, 10, 2), models::alexnet(224, 1000, 2),
        models::resnet18(224, 1000, 2)}) {
    const SimResult r = simulate(expand(spec), cfg, 2);
    EXPECT_GT(r.images_per_second(cfg), 60.0) << spec.name;
  }
}

TEST(SimPaper, Stratix10ProjectionHitsThreeToFourMs) {
  // §IV-B4: a 5x clock would give 3-4 ms per image for the same ResNet.
  SimConfig s10;
  s10.clock_hz = 105e6 * 5;
  const SimResult r = simulate(expand(models::resnet18(224, 1000, 2)), s10, 2);
  EXPECT_GE(r.ms_per_image(s10), 2.5);
  EXPECT_LE(r.ms_per_image(s10), 4.0);
}

TEST(SimPaper, VggIntervalGrowsWithInputSize) {
  const SimConfig cfg;
  std::uint64_t prev = 0;
  for (int size : {32, 64, 96, 144}) {
    const SimResult r =
        simulate(expand(models::vgg_like(size, 10, 2)), cfg, 2);
    EXPECT_GT(r.steady_interval, prev) << size;
    prev = r.steady_interval;
  }
}

TEST(SimPaper, VggScalesRoughlyQuadraticallyWithInputSide) {
  const SimConfig cfg;
  const auto t32 =
      simulate(expand(models::vgg_like(32, 10, 2)), cfg, 2).steady_interval;
  const auto t96 =
      simulate(expand(models::vgg_like(96, 10, 2)), cfg, 2).steady_interval;
  const double ratio =
      static_cast<double>(t96) / static_cast<double>(t32);
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 12.0);  // ~ (96/32)^2 = 9
}

// ------------------------------------------------------------------ §III-B5

TEST(SimPaper, SkipBufferOccupancyMatchesOneConvLineBuffer) {
  // "The required buffer is exactly same size as the buffer in a
  // convolutional layer. This is not accidental." For each Add, the skip
  // FIFO's measured peak occupancy (pixels) must not exceed the one-conv
  // line-buffer size (K-1 padded rows plus K pixels) plus jitter slack.
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  const SimResult r = simulate(p, {}, 2);
  int checked = 0;
  for (int i = 0; i < p.size(); ++i) {
    const Node& n = p.node(i);
    if (n.kind != NodeKind::Add) continue;
    // The skip fifo's name is <skip producer> -> / => <this add>.
    const std::string& producer = p.node(n.skip_from).name;
    for (const auto& f : r.fifos) {
      if (f.name != producer + "->" + n.name &&
          f.name != producer + "=>" + n.name) {
        continue;
      }
      const std::size_t line_buffer_pixels =
          static_cast<std::size_t>(n.in.w + 2) * 2 + 3;  // (K-1)*W_p + K
      EXPECT_LE(f.max_occupancy, line_buffer_pixels + 16) << f.name;
      EXPECT_GE(f.max_occupancy, line_buffer_pixels / 2) << f.name;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 8);  // every residual block's skip buffer was verified
}

TEST(SimPaper, SkipInfrastructureNeverCreatesDelays) {
  // "The skip buffer ... never creates delays by itself" — adds, forks and
  // pools must show zero output stalls on the full ResNet-18 run.
  const SimResult r = simulate(expand(models::resnet18(224, 1000, 2)), {}, 2);
  for (const auto& k : r.kernels) {
    if (k.name.find("add") == 0 || k.name.find("fork") == 0 ||
        k.name.find("pool") != std::string::npos) {
      EXPECT_EQ(k.stall_out, 0u) << k.name;
    }
  }
}

TEST(Sim, SimulatedBusyCyclesEqualAnalyticExactly) {
  // The discrete-event simulation and the closed-form §IV-B4 analysis are
  // independent implementations of the same clock model; per kernel and
  // per image they must agree to the cycle.
  for (const auto& spec :
       {models::tiny(12, 4, 2), models::vgg_like(16, 10, 2)}) {
    const Pipeline p = expand(spec);
    const SimConfig cfg;
    const int images = 3;
    const SimResult r = simulate(p, cfg, images);
    for (const auto& [name, cycles] : analytic_busy_cycles(p, cfg)) {
      bool found = false;
      for (const auto& k : r.kernels) {
        if (k.name != name) continue;
        found = true;
        EXPECT_EQ(k.busy, cycles * static_cast<std::uint64_t>(images))
            << spec.name << " kernel " << name;
      }
      EXPECT_TRUE(found) << name;
    }
  }
}

TEST(Sim, RejectsSingleImageRun) {
  EXPECT_THROW((void)simulate(expand(models::tiny(12, 4, 2)), {}, 1), Error);
}

}  // namespace
}  // namespace qnn
