#include "nn/reference.h"

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "test_util.h"

namespace qnn {
namespace {

/// Hand-computed 1x1-input convolution: dot of input channels and weights.
TEST(Reference, ConvSinglePosition) {
  NetworkSpec spec;
  spec.input = Shape{1, 1, 3};
  spec.input_bits = 4;
  spec.conv(2, 1, 1, 0, /*bn_act=*/false);
  const Pipeline p = expand(spec);
  NetworkParams params;
  WeightTensor w(FilterShape{2, 1, 3});
  // Filter 0: +1 +1 +1; filter 1: +1 -1 +1.
  w.at(0, 0, 0, 0) = 1;
  w.at(0, 0, 0, 1) = 1;
  w.at(0, 0, 0, 2) = 1;
  w.at(1, 0, 0, 0) = 1;
  w.at(1, 0, 0, 1) = -1;
  w.at(1, 0, 0, 2) = 1;
  params.convs.push_back(ConvParams{FilterBank::binarize(w)});

  IntTensor in(Shape{1, 1, 3});
  in.at(0, 0, 0) = 3;
  in.at(0, 0, 1) = 5;
  in.at(0, 0, 2) = 7;
  const ReferenceExecutor exec(p, params);
  const IntTensor out = exec.run(in);
  EXPECT_EQ(out.at(0, 0, 0), 15);
  EXPECT_EQ(out.at(0, 0, 1), 5);
}

TEST(Reference, ConvPaddingContributesNothing) {
  // All-(+1) 3x3 filter over a 1x1 input with pad 1: only the center pixel
  // is real, so the output equals that pixel's value.
  NetworkSpec spec;
  spec.input = Shape{1, 1, 1};
  spec.input_bits = 4;
  spec.conv(1, 3, 1, 1, false);
  const Pipeline p = expand(spec);
  NetworkParams params;
  WeightTensor w(FilterShape{1, 3, 1});
  for (auto& x : w.raw()) x = 1.0f;
  params.convs.push_back(ConvParams{FilterBank::binarize(w)});
  IntTensor in(Shape{1, 1, 1});
  in.at(0, 0, 0) = 9;
  const IntTensor out = ReferenceExecutor(p, params).run(in);
  EXPECT_EQ(out.at(0, 0, 0), 9);
}

TEST(Reference, StridedConvPicksCorrectWindows) {
  NetworkSpec spec;
  spec.input = Shape{4, 4, 1};
  spec.input_bits = 4;
  spec.conv(1, 2, 2, 0, false);
  const Pipeline p = expand(spec);
  NetworkParams params;
  WeightTensor w(FilterShape{1, 2, 1});
  for (auto& x : w.raw()) x = 1.0f;  // window sum
  params.convs.push_back(ConvParams{FilterBank::binarize(w)});
  IntTensor in(Shape{4, 4, 1});
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) in.at(y, x, 0) = y * 4 + x;
  }
  const IntTensor out = ReferenceExecutor(p, params).run(in);
  ASSERT_EQ(out.shape(), (Shape{2, 2, 1}));
  EXPECT_EQ(out.at(0, 0, 0), 0 + 1 + 4 + 5);
  EXPECT_EQ(out.at(0, 1, 0), 2 + 3 + 6 + 7);
  EXPECT_EQ(out.at(1, 0, 0), 8 + 9 + 12 + 13);
  EXPECT_EQ(out.at(1, 1, 0), 10 + 11 + 14 + 15);
}

TEST(Reference, MaxPoolBasic) {
  NetworkSpec spec;
  spec.input = Shape{4, 4, 2};
  spec.input_bits = 4;
  spec.max_pool(2, 2);
  const Pipeline p = expand(spec);
  NetworkParams params;
  Rng rng(3);
  IntTensor in = testutil::random_codes(Shape{4, 4, 2}, 4, rng);
  const IntTensor out = ReferenceExecutor(p, params).run(in);
  for (int oy = 0; oy < 2; ++oy) {
    for (int ox = 0; ox < 2; ++ox) {
      for (int c = 0; c < 2; ++c) {
        std::int32_t expect = 0;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            expect = std::max(expect, in.at(oy * 2 + dy, ox * 2 + dx, c));
          }
        }
        EXPECT_EQ(out.at(oy, ox, c), expect);
      }
    }
  }
}

TEST(Reference, GlobalAvgPoolIsWindowSum) {
  NetworkSpec spec;
  spec.input = Shape{3, 3, 2};
  spec.input_bits = 4;
  spec.avg_pool_global();
  const Pipeline p = expand(spec);
  NetworkParams params;
  Rng rng(4);
  IntTensor in = testutil::random_codes(Shape{3, 3, 2}, 4, rng);
  const IntTensor out = ReferenceExecutor(p, params).run(in);
  for (int c = 0; c < 2; ++c) {
    std::int32_t expect = 0;
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < 3; ++x) expect += in.at(y, x, c);
    }
    EXPECT_EQ(out.at(0, 0, c), expect);
  }
}

TEST(Reference, ThresholdModeMatchesFloatMode) {
  // End-to-end validation of the §III-B3 folding on a real network.
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const NetworkParams params = NetworkParams::random(p, 2024);
  const ReferenceExecutor hw(p, params, BnActMode::Threshold);
  const ReferenceExecutor fl(p, params, BnActMode::FloatPath);
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    const IntTensor img = testutil::random_image(12, 12, 3, rng);
    EXPECT_EQ(hw.run(img), fl.run(img)) << "image " << i;
  }
}

TEST(Reference, ResidualAddIsElementwise) {
  NetworkSpec spec;
  spec.input = Shape{6, 6, 3};
  spec.conv(4, 3, 1, 1);
  spec.residual(4, 1);
  const Pipeline p = expand(spec);
  const NetworkParams params = NetworkParams::random(p, 7);
  Rng rng(6);
  const IntTensor img = testutil::random_image(6, 6, 3, rng);
  const ReferenceExecutor exec(p, params);
  const auto all = exec.run_all(img);
  const Node& add = p.node(p.size() - 1);
  ASSERT_EQ(add.kind, NodeKind::Add);
  const IntTensor& main = all[static_cast<std::size_t>(add.main_from)];
  const IntTensor& skip = all[static_cast<std::size_t>(add.skip_from)];
  const IntTensor& sum = all.back();
  for (std::int64_t i = 0; i < sum.size(); ++i) {
    EXPECT_EQ(sum[i], main[i] + skip[i]);
  }
}

TEST(Reference, ActivationCodesAreNonDegenerate) {
  // The random parameter generator must produce spread codes — otherwise
  // equivalence tests would pass vacuously on all-zero streams.
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const NetworkParams params = NetworkParams::random(p, 99);
  Rng rng(8);
  const IntTensor img = testutil::random_image(12, 12, 3, rng);
  const auto all = ReferenceExecutor(p, params).run_all(img);
  for (int i = 0; i < p.size(); ++i) {
    if (p.node(i).kind != NodeKind::BnAct) continue;
    const IntTensor& t = all[static_cast<std::size_t>(i)];
    std::int64_t nonzero = 0;
    std::int64_t saturated = 0;
    for (std::int64_t j = 0; j < t.size(); ++j) {
      nonzero += t[j] != 0;
      saturated += t[j] == 3;
    }
    EXPECT_GT(nonzero, t.size() / 10) << p.node(i).name;
    EXPECT_LT(saturated, t.size() * 9 / 10) << p.node(i).name;
  }
}

TEST(Reference, ArgmaxLowestIndexWins) {
  IntTensor t(Shape{1, 1, 4});
  t.at(0, 0, 0) = 1;
  t.at(0, 0, 1) = 5;
  t.at(0, 0, 2) = 5;
  t.at(0, 0, 3) = 0;
  EXPECT_EQ(ReferenceExecutor::argmax(t), 1);
}

TEST(Reference, RejectsWrongInputShape) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const NetworkParams params = NetworkParams::random(p, 1);
  const ReferenceExecutor exec(p, params);
  EXPECT_THROW(exec.run(IntTensor(Shape{8, 8, 3})), Error);
}

}  // namespace
}  // namespace qnn
