#include "fpga/resource_model.h"

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace qnn {
namespace {

TEST(WeightCache, BlocksFollowM20KGeometry) {
  const BramGeometry g;
  // 3x3x64 = 576-bit entries need ceil(576/40) = 15 blocks of width; 64
  // entries fit the 512-entry minimum depth once.
  EXPECT_EQ(weight_cache_blocks(FilterShape{64, 3, 64}, g), 15);
  // 512 filters still fit one depth unit; 513 would need two.
  EXPECT_EQ(weight_cache_blocks(FilterShape{512, 3, 64}, g), 15);
  EXPECT_EQ(weight_cache_blocks(FilterShape{513, 3, 64}, g), 30);
  // A 1x1 projection: 64-bit entries -> 2 width blocks.
  EXPECT_EQ(weight_cache_blocks(FilterShape{128, 1, 64}, g), 2);
}

TEST(WeightCache, WasteAtLeast25PercentWhenDepthUnderfilled) {
  // "The minimal depth of a BRAM is 512, while the maximal number of weight
  // cache entries is 384 ... at least 25% of each BRAM used for weights
  // cache is wasted" (§III-B1a).
  const BramGeometry g;
  for (int out_c : {64, 96, 128, 256, 384}) {
    for (int k : {1, 3, 5, 7}) {
      for (int in_c : {3, 64, 256}) {
        const double waste = weight_cache_waste(FilterShape{out_c, k, in_c}, g);
        EXPECT_GE(waste, 0.25 - 1e-9)
            << "O=" << out_c << " k=" << k << " I=" << in_c;
        EXPECT_LT(waste, 1.0);
      }
    }
  }
}

TEST(WeightCache, FullDepthMinimizesWaste) {
  const BramGeometry g;
  // 512 entries of exactly 40-bit width: zero waste.
  EXPECT_NEAR(weight_cache_waste(FilterShape{512, 1, 40}, g), 0.0, 1e-9);
}

TEST(Device, StratixVSpecMatchesTableII) {
  const FpgaDevice d = stratix_v_5sgsd8();
  EXPECT_EQ(d.luts, 262400);
  EXPECT_EQ(d.ffs, 1050000);
  EXPECT_EQ(d.bram_blocks, 2567);
  EXPECT_DOUBLE_EQ(d.clock_hz, 105e6);
}

// --------------------------------------------------------- calibration pins

struct PaperNumbers {
  const char* name;
  NetworkSpec spec;
  double lut, ff, bram_kbit;
};

class CalibrationPins : public ::testing::TestWithParam<int> {};

TEST(Calibration, MatchesPublishedSyntheses) {
  // Tables III and IVb. LUT/FF must stay within 5%; BRAM within 20% (the
  // paper's BRAM totals include vendor-toolchain effects our block model
  // does not capture; see EXPERIMENTS.md).
  const PaperNumbers pins[] = {
      {"vgg32", models::vgg_like(32, 10, 2), 133887, 278501, 11020},
      {"alexnet", models::alexnet(224, 1000, 2), 343295, 664767, 34600},
      {"resnet18", models::resnet18(224, 1000, 2), 596081, 1175373, 30854},
  };
  for (const auto& pin : pins) {
    const NetworkResources r = estimate_resources(expand(pin.spec));
    EXPECT_NEAR(r.luts / pin.lut, 1.0, 0.05) << pin.name;
    EXPECT_NEAR(r.ffs / pin.ff, 1.0, 0.05) << pin.name;
    EXPECT_NEAR(r.bram_kbits() / pin.bram_kbit, 1.0, 0.20) << pin.name;
  }
}

TEST(Calibration, ResNetNeedsThreeDevices) {
  // §IV-B2: "we were forced to divide it into three DFEs."
  const NetworkResources r =
      estimate_resources(expand(models::resnet18(224, 1000, 2)));
  EXPECT_EQ(r.devices_needed(stratix_v_5sgsd8()), 3);
}

TEST(Calibration, AlexNetNeedsMultipleDevices) {
  // The paper reports three DFEs; our resource lower bound is two (the
  // partitioner decides the realized count, see partition tests).
  const NetworkResources r =
      estimate_resources(expand(models::alexnet(224, 1000, 2)));
  EXPECT_GE(r.devices_needed(stratix_v_5sgsd8()), 2);
}

TEST(Calibration, VggFitsOneDeviceUpTo144) {
  // §V: "For inputs up to 144x144, resource utilization is small enough to
  // fit on a single Stratix V 5SGSD8 FPGA."
  for (int size : {32, 64, 96, 144}) {
    const NetworkResources r =
        estimate_resources(expand(models::vgg_like(size, 10, 2)));
    EXPECT_EQ(r.devices_needed(stratix_v_5sgsd8()), 1) << size;
  }
}

TEST(Calibration, ResNetUsesFewerBramThanAlexNet) {
  // §IV-B2: "Due to lack of big FC layers and lower total number of
  // parameters, ResNet requires fewer BRAMs than AlexNet."
  const auto res = estimate_resources(expand(models::resnet18(224, 1000, 2)));
  const auto alex = estimate_resources(expand(models::alexnet(224, 1000, 2)));
  EXPECT_LT(res.bram_blocks, alex.bram_blocks);
  // And more LUTs — the reason for the three-DFE split.
  EXPECT_GT(res.luts, 1.5 * alex.luts);
}

TEST(Calibration, Fig6GrowthIsMildFrom32To96) {
  // Fig 6 / §IV-B4: "increasing the size of input from 32x32 to 96x96
  // increases the resource utilization by approximately 5% for all types
  // of resources" (percentage points of the device).
  const FpgaDevice dev = stratix_v_5sgsd8();
  const auto r32 = estimate_resources(expand(models::vgg_like(32, 10, 2)));
  const auto r96 = estimate_resources(expand(models::vgg_like(96, 10, 2)));
  const double d_lut = (r96.luts - r32.luts) / static_cast<double>(dev.luts);
  const double d_ff = (r96.ffs - r32.ffs) / static_cast<double>(dev.ffs);
  const double d_bram =
      static_cast<double>(r96.bram_blocks - r32.bram_blocks) /
      static_cast<double>(dev.bram_blocks);
  EXPECT_LT(std::abs(d_lut), 0.10);
  EXPECT_LT(std::abs(d_ff), 0.10);
  EXPECT_LT(std::abs(d_bram), 0.10);
}

TEST(Calibration, LargeFcBanksAreStreamedNotCached) {
  const Pipeline p = expand(models::alexnet(224, 1000, 2));
  const NetworkResources r = estimate_resources(p);
  int streamed = 0;
  for (const auto& node : r.nodes) {
    streamed += node.weights_streamed;
  }
  // fc6 (37.7 Mbit) and fc7 (16.8 Mbit) exceed the per-layer FMem budget.
  EXPECT_EQ(streamed, 2);
  // ResNet-18 keeps every bank resident.
  const NetworkResources res =
      estimate_resources(expand(models::resnet18(224, 1000, 2)));
  for (const auto& node : res.nodes) {
    EXPECT_FALSE(node.weights_streamed) << node.name;
  }
}

TEST(Resources, SkipInfrastructureCostIsExplicit) {
  // Removing skip connections removes the adders, forks and 16-bit delay
  // buffers; the conv ladder itself is unchanged (see models tests).
  const auto with = estimate_resources(expand(models::resnet18(224, 1000, 2)));
  const auto without =
      estimate_resources(expand(models::resnet18_noskip(224, 1000, 2)));
  EXPECT_GT(with.luts, without.luts);
  EXPECT_GT(with.ffs, without.ffs);
  // Per residual block the delta is an adder + one line buffer (§III-B5);
  // network-wide it is what pushes ResNet-18 past AlexNet's LUT count.
  int adds = 0;
  for (const auto& n : with.nodes) adds += n.kind == NodeKind::Add;
  EXPECT_EQ(adds, 8);
}

TEST(Resources, PerNodeRollupMatchesTotals) {
  const NetworkResources r =
      estimate_resources(expand(models::tiny(12, 4, 2)));
  double luts = 0.0;
  double ffs = 0.0;
  int bram = 0;
  for (const auto& n : r.nodes) {
    luts += n.luts;
    ffs += n.ffs;
    bram += n.bram_blocks;
  }
  EXPECT_DOUBLE_EQ(luts, r.luts);
  EXPECT_DOUBLE_EQ(ffs, r.ffs);
  EXPECT_EQ(bram, r.bram_blocks);
}

TEST(Resources, ActivationBitsIncreaseCost) {
  // 2-bit activations cost more fabric than 1-bit (wider buffers and
  // datapath) — the price of the accuracy gain the paper argues for.
  const auto b1 = estimate_resources(expand(models::vgg_like(32, 10, 1)));
  const auto b2 = estimate_resources(expand(models::vgg_like(32, 10, 2)));
  const auto b3 = estimate_resources(expand(models::vgg_like(32, 10, 3)));
  EXPECT_LT(b1.luts, b2.luts);
  EXPECT_LT(b2.luts, b3.luts);
  EXPECT_LT(b1.ffs, b2.ffs);
}

TEST(Resources, DevicesNeededScalesWithFill) {
  const NetworkResources r =
      estimate_resources(expand(models::resnet18(224, 1000, 2)));
  EXPECT_GE(r.devices_needed(stratix_v_5sgsd8(), 0.5),
            r.devices_needed(stratix_v_5sgsd8(), 1.0));
  EXPECT_THROW((void)r.devices_needed(stratix_v_5sgsd8(), 0.0), Error);
}

TEST(Resources, Stratix10ProjectionFitsResNetInFewerDevices) {
  const NetworkResources r =
      estimate_resources(expand(models::resnet18(224, 1000, 2)));
  EXPECT_LT(r.devices_needed(stratix_10_projection()),
            r.devices_needed(stratix_v_5sgsd8()));
}

}  // namespace
}  // namespace qnn
