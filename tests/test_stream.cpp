#include "dataflow/stream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

namespace qnn {
namespace {

TEST(Stream, FifoOrderSingleThread) {
  Stream s(16, 8, "t");
  for (std::int32_t i = 0; i < 10; ++i) s.push(i);
  s.close();
  std::int32_t v;
  for (std::int32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(s.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(s.pop(v));
}

TEST(Stream, CloseWithPendingValuesDrains) {
  Stream s(8, 8, "t");
  s.push(1);
  s.push(2);
  s.close();
  std::int32_t v;
  EXPECT_TRUE(s.pop(v));
  EXPECT_TRUE(s.pop(v));
  EXPECT_FALSE(s.pop(v));
  EXPECT_FALSE(s.pop(v));  // stays closed
}

TEST(Stream, ProducerConsumerLargeVolume) {
  Stream s(64, 16, "pc");
  const std::int64_t n = 200000;
  std::int64_t consumer_sum = 0;
  std::thread consumer([&] {
    std::int32_t v;
    std::int32_t expect = 0;
    while (s.pop(v)) {
      ASSERT_EQ(v, expect++);  // order preserved under contention
      consumer_sum += v;
    }
  });
  for (std::int32_t i = 0; i < n; ++i) s.push(i);
  s.close();
  consumer.join();
  EXPECT_EQ(consumer_sum, n * (n - 1) / 2);
  EXPECT_EQ(s.pushed(), static_cast<std::uint64_t>(n));
}

TEST(Stream, BackpressureBlocksProducerUntilPopped) {
  Stream s(2, 8, "bp");
  s.push(1);
  s.push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    s.push(3);  // must block until a pop frees space
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  std::int32_t v;
  ASSERT_TRUE(s.pop(v));
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(Stream, AbortUnblocksBlockedProducer) {
  std::atomic<bool> abort{false};
  Stream s(1, 8, "ab");
  s.set_abort(&abort);
  s.push(1);
  std::atomic<bool> threw{false};
  std::thread producer([&] {
    try {
      s.push(2);  // full; blocks until abort fires
    } catch (const Error&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  abort.store(true);
  producer.join();
  EXPECT_TRUE(threw.load());
}

TEST(Stream, AbortUnblocksBlockedConsumer) {
  std::atomic<bool> abort{false};
  Stream s(4, 8, "ab2");
  s.set_abort(&abort);
  std::atomic<bool> threw{false};
  std::thread consumer([&] {
    try {
      std::int32_t v;
      s.pop(v);  // empty; blocks until abort fires
    } catch (const Error&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  abort.store(true);
  consumer.join();
  EXPECT_TRUE(threw.load());
}

TEST(Stream, MetadataAccessors) {
  Stream s(10, 16, "meta");
  EXPECT_EQ(s.bits(), 16);
  EXPECT_EQ(s.name(), "meta");
  EXPECT_FALSE(s.closed());
  s.close();
  EXPECT_TRUE(s.closed());
}

TEST(Stream, RejectsBadConfig) {
  EXPECT_THROW(Stream(0, 8, "x"), Error);
  EXPECT_THROW(Stream(4, 0, "x"), Error);
  EXPECT_THROW(Stream(4, 64, "x"), Error);
}

TEST(Stream, ResetReArmsAfterAbandonedRun) {
  // Regression: reset() used to QNN_CHECK(head_ == tail_), so a stream
  // holding values from an aborted run poisoned the engine permanently.
  Stream s(8, 8, "reset");
  s.push(1);
  s.push(2);
  s.close();
  s.reset();
  EXPECT_FALSE(s.closed());
  EXPECT_EQ(s.pushed(), 0u);
  EXPECT_EQ(s.transactions(), 0u);
  EXPECT_EQ(s.push_stalls(), 0u);
  s.push(7);
  s.close();
  std::int32_t v = 0;
  EXPECT_TRUE(s.pop(v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(s.pop(v));
}

TEST(StreamBurst, BurstRoundTripKeepsOrder) {
  Stream s(64, 8, "burst");
  std::vector<std::int32_t> in(40);
  std::iota(in.begin(), in.end(), 100);
  s.push_burst(in);
  s.close();
  std::vector<std::int32_t> out(64);
  const std::size_t n = s.pop_burst(out);
  EXPECT_EQ(n, in.size());
  EXPECT_TRUE(std::equal(in.begin(), in.end(), out.begin()));
  EXPECT_EQ(s.pop_burst(out), 0u);  // closed and drained
}

TEST(StreamBurst, TransactionsCountRingTransfersNotValues) {
  Stream s(64, 8, "tx");
  std::vector<std::int32_t> vs(10);
  std::iota(vs.begin(), vs.end(), 0);
  s.push_burst(vs);  // fits entirely: one ring transaction
  EXPECT_EQ(s.pushed(), 10u);
  EXPECT_EQ(s.transactions(), 1u);
  s.push(42);  // scalar = degenerate burst of one
  EXPECT_EQ(s.pushed(), 11u);
  EXPECT_EQ(s.transactions(), 2u);
}

TEST(StreamBurst, TryPushRespectsCapacityAndReportsPartial) {
  Stream s(8, 8, "cap");
  std::vector<std::int32_t> vs(12);
  std::iota(vs.begin(), vs.end(), 0);
  EXPECT_EQ(s.try_push_burst(vs), 8u);  // capacity honored exactly
  EXPECT_EQ(s.try_push_burst(std::span<const std::int32_t>(vs).subspan(8)),
            0u);
  std::vector<std::int32_t> out(3);
  EXPECT_EQ(s.try_pop_burst(out), 3u);
  EXPECT_EQ(out, (std::vector<std::int32_t>{0, 1, 2}));
  EXPECT_EQ(s.try_push_burst(std::span<const std::int32_t>(vs).subspan(8)),
            3u);  // freed space, wrap-around segment
}

// Property test: any interleaving of scalar and burst push/pop of random
// sizes is FIFO across capacities, including tiny rings that wrap
// thousands of times.
TEST(StreamBurst, InterleavedScalarAndBurstPreserveFifoOrder) {
  std::mt19937 rng(0xB0057u);
  for (const std::size_t cap : {1u, 2u, 3u, 5u, 8u, 17u, 64u}) {
    Stream s(cap, 8, "prop");
    const std::int32_t total = 4000;
    std::int32_t next_in = 0;   // next value to produce
    std::int32_t next_out = 0;  // next value expected by the consumer
    std::vector<std::int32_t> chunk;
    std::vector<std::int32_t> out(2 * cap + 8);
    while (next_out < total) {
      const std::size_t used = static_cast<std::size_t>(next_in - next_out);
      // Producer action: scalar push when there is room, else a burst of
      // random size (possibly exceeding free space — partial transfer).
      if (next_in < total) {
        if (rng() % 3 == 0 && used < cap) {
          s.push(next_in++);
        } else {
          chunk.clear();
          const std::size_t want = rng() % 7;
          for (std::size_t i = 0;
               i < want && next_in + static_cast<std::int32_t>(i) < total;
               ++i) {
            chunk.push_back(next_in + static_cast<std::int32_t>(i));
          }
          next_in +=
              static_cast<std::int32_t>(s.try_push_burst(chunk));
        }
      }
      // Consumer action: scalar pop when a value is ready, else a burst.
      if (rng() % 3 == 0 && next_in > next_out) {
        std::int32_t v = -1;
        ASSERT_TRUE(s.pop(v));
        ASSERT_EQ(v, next_out++) << "cap " << cap;
      } else {
        const std::size_t want = rng() % (out.size() - 1) + 1;
        const std::size_t n =
            s.try_pop_burst(std::span<std::int32_t>(out).first(want));
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(out[i], next_out++) << "cap " << cap;
        }
      }
    }
    EXPECT_EQ(s.pushed(), static_cast<std::uint64_t>(total));
    EXPECT_LE(s.transactions(), s.pushed());
  }
}

// Two-thread stress: producer and consumer move bursts of varying size
// through a small ring concurrently. Run under -DQNN_SANITIZE=thread this
// validates the acquire/release pairing of the burst fast path.
TEST(StreamBurst, TwoThreadBurstStressKeepsSequence) {
  Stream s(37, 16, "stress");
  const std::int32_t total = 200000;
  std::thread consumer([&] {
    std::vector<std::int32_t> buf(61);
    std::int32_t expect = 0;
    std::size_t want = 1;
    for (;;) {
      const std::size_t n =
          s.pop_burst(std::span<std::int32_t>(buf).first(want));
      if (n == 0) break;  // closed and drained
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(buf[i], expect++);
      }
      want = want % buf.size() + 1;
    }
    EXPECT_EQ(expect, total);
  });
  std::vector<std::int32_t> vs(total);
  std::iota(vs.begin(), vs.end(), 0);
  std::span<const std::int32_t> rest(vs);
  std::size_t len = 1;
  while (!rest.empty()) {
    const std::size_t n = std::min(len, rest.size());
    s.push_burst(rest.first(n));
    rest = rest.subspan(n);
    len = len % 97 + 1;
  }
  s.close();
  consumer.join();
  EXPECT_EQ(s.pushed(), static_cast<std::uint64_t>(total));
  EXPECT_LT(s.transactions(), s.pushed());  // bursts actually coalesced
}

// Satellite regression: reset() must return the *counters* to the
// freshly constructed state too, so RunStats of a rerun after cancel()
// never report the aborted run's traffic.
TEST(Stream, ResetClearsTrafficAndStallCounters) {
  Stream s(4, 8, "counters");
  std::int32_t buf[4] = {};
  const std::int32_t vs[] = {1, 2, 3};
  ASSERT_EQ(s.try_push_burst(vs), 3u);
  ASSERT_EQ(s.try_pop_burst({buf, 2}), 2u);
  s.note_push_stall();
  s.note_pop_stall();
  ASSERT_GT(s.pushed(), 0u);
  ASSERT_GT(s.transactions(), 0u);

  s.reset();
  EXPECT_EQ(s.pushed(), 0u);
  EXPECT_EQ(s.transactions(), 0u);
  EXPECT_EQ(s.push_stalls(), 0u);
  EXPECT_EQ(s.pop_stalls(), 0u);
  EXPECT_FALSE(s.closed());
}

// ---- readiness seam (ReadyHook) -----------------------------------------

/// Records every wake; readiness-protocol semantics (spurious tolerance,
/// per-transaction firing) are documented on ReadyHook in stream.h.
class RecordingHook final : public ReadyHook {
 public:
  void wake(int task) override { wakes_.push_back(task); }
  [[nodiscard]] const std::vector<int>& wakes() const { return wakes_; }
  void clear() { wakes_.clear(); }

 private:
  std::vector<int> wakes_;
};

TEST(StreamReadiness, PushWakesConsumerPopWakesProducer) {
  Stream s(8, 8, "ready");
  RecordingHook hook;
  s.bind_consumer(&hook, 7);
  s.bind_producer(&hook, 3);

  // Every successful push transaction wakes the consumer — level-based,
  // not just the empty->nonempty edge (see ReadyHook's lost-wakeup note).
  const std::int32_t two[] = {1, 2};
  const std::int32_t one[] = {3};
  ASSERT_EQ(s.try_push_burst(two), 2u);
  ASSERT_EQ(s.try_push_burst(one), 1u);
  EXPECT_EQ(hook.wakes(), (std::vector<int>{7, 7}));

  hook.clear();
  std::int32_t buf[4] = {};
  ASSERT_EQ(s.try_pop_burst({buf, 2}), 2u);
  EXPECT_EQ(hook.wakes(), (std::vector<int>{3}));
}

TEST(StreamReadiness, FailedTransactionsDoNotWake) {
  Stream s(2, 8, "ready_fail");
  RecordingHook hook;
  s.bind_consumer(&hook, 1);
  s.bind_producer(&hook, 2);

  const std::int32_t two[] = {1, 2};
  const std::int32_t one[] = {3};
  ASSERT_EQ(s.try_push_burst(two), 2u);  // fills the ring
  hook.clear();
  ASSERT_EQ(s.try_push_burst(one), 0u);  // full: no transaction, no wake
  std::int32_t buf[1];
  ASSERT_EQ(s.try_pop_burst({buf, 1}), 1u);
  ASSERT_EQ(s.try_pop_burst({buf, 1}), 1u);
  hook.clear();
  ASSERT_EQ(s.try_pop_burst({buf, 1}), 0u);  // empty: no wake either
  EXPECT_TRUE(hook.wakes().empty());
}

TEST(StreamReadiness, CloseWakesConsumerSoDrainedIsObserved) {
  Stream s(4, 8, "ready_close");
  RecordingHook hook;
  s.bind_consumer(&hook, 5);
  s.close();
  // A consumer blocked on an empty stream learns about end-of-stream only
  // through this wake: no further push will ever arrive.
  EXPECT_EQ(hook.wakes(), (std::vector<int>{5}));
}

TEST(StreamReadiness, UnbindSilencesTheSeam) {
  Stream s(4, 8, "ready_unbind");
  RecordingHook hook;
  s.bind_consumer(&hook, 1);
  s.bind_producer(&hook, 2);
  s.bind_consumer(nullptr, -1);
  s.bind_producer(nullptr, -1);
  const std::int32_t one[] = {1};
  ASSERT_EQ(s.try_push_burst(one), 1u);
  std::int32_t v = 0;
  ASSERT_EQ(s.try_pop_burst({&v, 1}), 1u);
  s.close();
  EXPECT_TRUE(hook.wakes().empty());
}

// Satellite regression: the engine resets every stream between runs while
// the ready-queue executor's hook bindings are still in place (bound once
// before workers start, cleared after they join). reset() must neither
// drop the binding nor leave the ring in a state where the next run's
// first transaction fails to fire the wake — either defect turns the rerun
// after cancel() into a lost wakeup against a parked worker.
TEST(StreamReadiness, ResetKeepsHookBindingsAndWakeContractArmed) {
  Stream s(4, 8, "reset_hooked");
  RecordingHook hook;
  s.bind_consumer(&hook, 7);
  s.bind_producer(&hook, 3);

  // Abandoned run: values stranded in flight, stream closed.
  const std::int32_t vs[] = {1, 2, 3};
  ASSERT_EQ(s.try_push_burst(vs), 3u);
  s.close();
  hook.clear();

  s.reset();
  EXPECT_FALSE(s.closed());
  EXPECT_TRUE(hook.wakes().empty());  // reset itself is not a transaction

  // Next run: the very first push still wakes the consumer task...
  s.push(42);
  EXPECT_EQ(hook.wakes(), (std::vector<int>{7}));
  hook.clear();
  // ...the stale values are gone (FIFO re-armed, not merely reopened)...
  std::int32_t v = 0;
  ASSERT_TRUE(s.pop(v));
  EXPECT_EQ(v, 42);
  // ...and the pop woke the producer side, close wakes the consumer.
  EXPECT_EQ(hook.wakes(), (std::vector<int>{3}));
  hook.clear();
  s.close();
  EXPECT_EQ(hook.wakes(), (std::vector<int>{7}));
}

}  // namespace
}  // namespace qnn
