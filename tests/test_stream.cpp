#include "dataflow/stream.h"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace qnn {
namespace {

TEST(Stream, FifoOrderSingleThread) {
  Stream s(16, 8, "t");
  for (std::int32_t i = 0; i < 10; ++i) s.push(i);
  s.close();
  std::int32_t v;
  for (std::int32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(s.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(s.pop(v));
}

TEST(Stream, CloseWithPendingValuesDrains) {
  Stream s(8, 8, "t");
  s.push(1);
  s.push(2);
  s.close();
  std::int32_t v;
  EXPECT_TRUE(s.pop(v));
  EXPECT_TRUE(s.pop(v));
  EXPECT_FALSE(s.pop(v));
  EXPECT_FALSE(s.pop(v));  // stays closed
}

TEST(Stream, ProducerConsumerLargeVolume) {
  Stream s(64, 16, "pc");
  const std::int64_t n = 200000;
  std::int64_t consumer_sum = 0;
  std::thread consumer([&] {
    std::int32_t v;
    std::int32_t expect = 0;
    while (s.pop(v)) {
      ASSERT_EQ(v, expect++);  // order preserved under contention
      consumer_sum += v;
    }
  });
  for (std::int32_t i = 0; i < n; ++i) s.push(i);
  s.close();
  consumer.join();
  EXPECT_EQ(consumer_sum, n * (n - 1) / 2);
  EXPECT_EQ(s.pushed(), static_cast<std::uint64_t>(n));
}

TEST(Stream, BackpressureBlocksProducerUntilPopped) {
  Stream s(2, 8, "bp");
  s.push(1);
  s.push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    s.push(3);  // must block until a pop frees space
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  std::int32_t v;
  ASSERT_TRUE(s.pop(v));
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(Stream, AbortUnblocksBlockedProducer) {
  std::atomic<bool> abort{false};
  Stream s(1, 8, "ab");
  s.set_abort(&abort);
  s.push(1);
  std::atomic<bool> threw{false};
  std::thread producer([&] {
    try {
      s.push(2);  // full; blocks until abort fires
    } catch (const Error&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  abort.store(true);
  producer.join();
  EXPECT_TRUE(threw.load());
}

TEST(Stream, AbortUnblocksBlockedConsumer) {
  std::atomic<bool> abort{false};
  Stream s(4, 8, "ab2");
  s.set_abort(&abort);
  std::atomic<bool> threw{false};
  std::thread consumer([&] {
    try {
      std::int32_t v;
      s.pop(v);  // empty; blocks until abort fires
    } catch (const Error&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  abort.store(true);
  consumer.join();
  EXPECT_TRUE(threw.load());
}

TEST(Stream, MetadataAccessors) {
  Stream s(10, 16, "meta");
  EXPECT_EQ(s.bits(), 16);
  EXPECT_EQ(s.name(), "meta");
  EXPECT_FALSE(s.closed());
  s.close();
  EXPECT_TRUE(s.closed());
}

TEST(Stream, RejectsBadConfig) {
  EXPECT_THROW(Stream(0, 8, "x"), Error);
  EXPECT_THROW(Stream(4, 0, "x"), Error);
  EXPECT_THROW(Stream(4, 64, "x"), Error);
}

}  // namespace
}  // namespace qnn
