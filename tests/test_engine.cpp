#include "dataflow/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "models/zoo.h"
#include "nn/reference.h"
#include "test_util.h"

namespace qnn {
namespace {

/// The central correctness claim: the streaming engine is bit-exact
/// against the golden layer-by-layer reference executor — under every
/// executor model and burst size.
void expect_engine_matches_reference(const NetworkSpec& spec,
                                     std::uint64_t seed, int images,
                                     EngineOptions opt = {}) {
  const Pipeline p = expand(spec);
  const NetworkParams params = NetworkParams::random(p, seed);
  const ReferenceExecutor ref(p, params);
  StreamEngine engine(p, params, opt);
  Rng rng(seed ^ 0xabcdef);
  std::vector<IntTensor> batch;
  batch.reserve(static_cast<std::size_t>(images));
  for (int i = 0; i < images; ++i) {
    batch.push_back(
        testutil::random_codes(spec.input, spec.input_bits, rng));
  }
  const auto outs = engine.run(batch);
  ASSERT_EQ(outs.size(), batch.size());
  for (int i = 0; i < images; ++i) {
    EXPECT_EQ(outs[static_cast<std::size_t>(i)],
              ref.run(batch[static_cast<std::size_t>(i)]))
        << spec.name << " image " << i;
  }
}

TEST(Engine, SingleConvMatchesReference) {
  NetworkSpec spec;
  spec.name = "conv_only";
  spec.input = Shape{6, 6, 3};
  spec.conv(4, 3, 1, 1, false);
  expect_engine_matches_reference(spec, 11, 3);
}

TEST(Engine, ConvBnActPoolChain) {
  NetworkSpec spec;
  spec.name = "chain";
  spec.input = Shape{8, 8, 3};
  spec.conv(8, 3, 1, 1).max_pool(2, 2).conv(4, 3, 1, 0).dense(5, false);
  expect_engine_matches_reference(spec, 12, 3);
}

TEST(Engine, StridedAndUnpaddedConvs) {
  NetworkSpec spec;
  spec.name = "strided";
  spec.input = Shape{11, 11, 2};
  spec.conv(6, 5, 2, 0).conv(4, 3, 1, 1).dense(3, false);
  expect_engine_matches_reference(spec, 13, 2);
}

TEST(Engine, ResidualIdentity) {
  NetworkSpec spec;
  spec.name = "res_id";
  spec.input = Shape{8, 8, 3};
  spec.conv(4, 3, 1, 1);
  spec.residual(4, 1);
  spec.avg_pool_global();
  spec.dense(3, false);
  expect_engine_matches_reference(spec, 14, 3);
}

TEST(Engine, ResidualDownsampleProjection) {
  NetworkSpec spec;
  spec.name = "res_down";
  spec.input = Shape{12, 12, 3};
  spec.conv(4, 3, 1, 1);
  spec.residual(8, 2);
  spec.residual(8, 1);
  spec.avg_pool_global();
  spec.dense(4, false);
  expect_engine_matches_reference(spec, 15, 2);
}

TEST(Engine, TinyModelEndToEnd) {
  expect_engine_matches_reference(models::tiny(12, 4, 2), 16, 4);
}

TEST(Engine, TinyModelOneBitActivations) {
  expect_engine_matches_reference(models::tiny(12, 4, 1), 17, 2);
}

TEST(Engine, TinyModelThreeBitActivations) {
  expect_engine_matches_reference(models::tiny(12, 4, 3), 18, 2);
}

TEST(Engine, VggLike16MatchesReference) {
  expect_engine_matches_reference(models::vgg_like(16, 10, 2), 19, 2);
}

TEST(Engine, RunOneReturnsSameAsBatch) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline p = expand(spec);
  const NetworkParams params = NetworkParams::random(p, 20);
  StreamEngine engine(p, params);
  Rng rng(21);
  const IntTensor img = testutil::random_image(12, 12, 3, rng);
  const IntTensor a = engine.run_one(img);
  const IntTensor b = engine.run_one(img);  // engine is reusable
  EXPECT_EQ(a, b);
}

TEST(Engine, StreamTrafficAccountsEveryEdge) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline p = expand(spec);
  const NetworkParams params = NetworkParams::random(p, 22);
  StreamEngine engine(p, params);
  Rng rng(23);
  (void)engine.run_one(testutil::random_image(12, 12, 3, rng));
  std::uint64_t total = 0;
  for (const auto& [name, pushed] : engine.stream_traffic()) {
    total += pushed;
  }
  // At minimum the input and output streams carried a full map each.
  EXPECT_GT(total, static_cast<std::uint64_t>(p.input.elems()));
}

TEST(Engine, RunStatsReportWallClockThroughput) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const NetworkParams params = NetworkParams::random(p, 26);
  StreamEngine engine(p, params);
  Rng rng(27);
  std::vector<IntTensor> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(testutil::random_image(12, 12, 3, rng));
  }
  StreamEngine::RunStats stats;
  const auto out = engine.run(batch, &stats);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.images_per_second, 0.0);
  EXPECT_NEAR(stats.images_per_second * stats.wall_seconds, 4.0, 1e-6);
  // values_streamed mirrors the sum over stream_traffic() so the serving
  // metrics can report pipeline utilization without re-walking streams.
  std::uint64_t traffic = 0;
  for (const auto& [name, pushed] : engine.stream_traffic()) {
    traffic += pushed;
  }
  EXPECT_EQ(stats.values_streamed, traffic);
  EXPECT_GT(stats.values_streamed,
            static_cast<std::uint64_t>(4 * p.input.elems()));
}

TEST(Engine, FinnCnvUnpaddedTopologyMatchesReference) {
  expect_engine_matches_reference(models::finn_cnv(10, 2), 28, 1);
}

TEST(Engine, RejectsWrongImageShape) {
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline p = expand(spec);
  const NetworkParams params = NetworkParams::random(p, 24);
  StreamEngine engine(p, params);
  EXPECT_THROW((void)engine.run_one(IntTensor(Shape{8, 8, 3})), Error);
}

const char* kind_name(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kThreadPerKernel:
      return "thread-per-kernel";
    case ExecutorKind::kPooled:
      return "pooled";
    case ExecutorKind::kReadyQueue:
      return "ready-queue";
  }
  return "?";
}

// Every zoo-style topology must be bit-exact in every executor mode and
// at both ends of the burst spectrum (1 = scalar transport).
TEST(EngineExecutors, BitExactAcrossExecutorAndBurstMatrix) {
  NetworkSpec res;
  res.name = "res_matrix";
  res.input = Shape{12, 12, 3};
  res.conv(4, 3, 1, 1);
  res.residual(8, 2);
  res.residual(8, 1);
  res.avg_pool_global();
  res.dense(4, false);

  const NetworkSpec specs[] = {models::tiny(12, 4, 2), res,
                               models::vgg_like(16, 10, 2),
                               models::finn_cnv(10, 2)};
  std::uint64_t seed = 31;
  for (const NetworkSpec& spec : specs) {
    for (const ExecutorKind kind :
         {ExecutorKind::kThreadPerKernel, ExecutorKind::kPooled,
          ExecutorKind::kReadyQueue}) {
      for (const std::size_t burst : {std::size_t{1}, std::size_t{256}}) {
        EngineOptions opt;
        opt.executor = kind;
        opt.burst = burst;
        SCOPED_TRACE(spec.name + " burst=" + std::to_string(burst) + " " +
                     kind_name(kind));
        expect_engine_matches_reference(spec, seed++, 2, opt);
      }
    }
  }
}

// Adaptive per-edge burst sizing is a transport decision, never a
// numerical one: the same zoo topologies must produce identical outputs
// with row-sized per-edge bursts and with uniform scalar transport
// (burst = 1, adaptive off), under both cooperative executors.
TEST(EngineExecutors, AdaptiveBurstsBitExactWithScalarTransport) {
  NetworkSpec res;
  res.name = "res_adaptive";
  res.input = Shape{12, 12, 3};
  res.conv(4, 3, 1, 1);
  res.residual(8, 2);
  res.residual(8, 1);
  res.avg_pool_global();
  res.dense(4, false);

  const NetworkSpec specs[] = {models::tiny(12, 4, 2), res,
                               models::vgg_like(16, 10, 2),
                               models::finn_cnv(10, 2)};
  std::uint64_t seed = 71;
  for (const NetworkSpec& spec : specs) {
    const Pipeline p = expand(spec);
    const NetworkParams params = NetworkParams::random(p, seed);
    Rng rng(seed ^ 0xfeed);
    ++seed;
    std::vector<IntTensor> batch;
    for (int i = 0; i < 2; ++i) {
      batch.push_back(
          testutil::random_codes(spec.input, spec.input_bits, rng));
    }

    EngineOptions adaptive;  // defaults: adaptive per-edge, ready queue
    StreamEngine baseline(p, params, adaptive);
    const auto want = baseline.run(batch);

    for (const ExecutorKind kind :
         {ExecutorKind::kPooled, ExecutorKind::kReadyQueue}) {
      EngineOptions scalar;
      scalar.executor = kind;
      scalar.burst = 1;
      scalar.adaptive_burst = false;
      StreamEngine engine(p, params, scalar);
      const auto got = engine.run(batch);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i], want[i])
            << spec.name << " image " << i << " " << kind_name(kind);
      }
    }
  }
}

// Regression for the reset-poisoning bug: a run that aborts (here via
// cancel(), which makes the feeder-side task throw) must leave the engine
// fully reusable — the next run starts from pristine streams and kernels
// and stays bit-exact.
TEST(EngineRecovery, RecoversAfterCancelledRunInEveryMode) {
  for (const ExecutorKind kind :
       {ExecutorKind::kThreadPerKernel, ExecutorKind::kPooled,
        ExecutorKind::kReadyQueue}) {
    EngineOptions opt;
    opt.executor = kind;
    const Pipeline p = expand(models::tiny(12, 4, 2));
    const NetworkParams params = NetworkParams::random(p, 29);
    StreamEngine engine(p, params, opt);
    Rng rng(30);
    const IntTensor img = testutil::random_image(12, 12, 3, rng);
    const IntTensor good = engine.run_one(img);

    std::vector<IntTensor> batch;
    for (int i = 0; i < 64; ++i) batch.push_back(img);
    std::atomic<bool> stop{false};
    // Hammer cancel() so the abort lands inside the run with certainty.
    std::thread canceller([&] {
      while (!stop.load()) {
        engine.cancel();
        std::this_thread::yield();
      }
    });
    EXPECT_THROW((void)engine.run(batch), Error);
    stop.store(true);
    canceller.join();

    EXPECT_EQ(engine.run_one(img), good) << kind_name(kind);
  }
}

// Satellite regression for stale stats across re-arm: RunStats of a rerun
// after cancel() must match a clean run exactly — Stream::reset() clears
// the pushed/transactions/stall counters along with the ring, so an
// aborted run's traffic never inflates the next run's numbers.
TEST(EngineRecovery, RunStatsPristineAfterCancelledRun) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const NetworkParams params = NetworkParams::random(p, 33);
  Rng rng(34);
  const IntTensor img = testutil::random_image(12, 12, 3, rng);

  // Clean engine: the expected per-run traffic.
  StreamEngine clean(p, params);
  StreamEngine::RunStats want;
  (void)clean.run(std::span<const IntTensor>(&img, 1), &want);

  StreamEngine engine(p, params);
  std::vector<IntTensor> batch;
  for (int i = 0; i < 64; ++i) batch.push_back(img);
  std::atomic<bool> stop{false};
  std::thread canceller([&] {
    while (!stop.load()) {
      engine.cancel();
      std::this_thread::yield();
    }
  });
  EXPECT_THROW((void)engine.run(batch), Error);
  stop.store(true);
  canceller.join();

  StreamEngine::RunStats got;
  const auto outs = engine.run(std::span<const IntTensor>(&img, 1), &got);
  ASSERT_EQ(outs.size(), 1u);
  // Deterministic counters must match a clean run exactly; the stall
  // counts are scheduling-dependent and only checked for sanity.
  EXPECT_EQ(got.values_streamed, want.values_streamed);
  EXPECT_EQ(got.faults_injected, 0u);
  EXPECT_GT(got.stream_transactions, 0u);
  EXPECT_LE(got.stream_transactions, got.values_streamed);
}

// Satellite regression: cancel() landing while ready-queue workers are
// PARKED. With pool_threads far above this machine's core count most
// workers sit on the parking lot with ReadyHook bindings armed on the
// streams their tasks last blocked on; only RUNNING tasks poll the abort
// flag, so cancellation correctness rests on the executor's quiescence
// path waking every parker. The staggered delays land the cancel in
// different protocol states (feeder active, pipe draining, workers mostly
// parked); whichever state it hits, the run must either complete or throw
// — never hang — and the engine must re-arm bit-exactly.
TEST(EngineRecovery, CancelWakesParkedReadyQueueWorkers) {
  EngineOptions opt;
  opt.executor = ExecutorKind::kReadyQueue;
  opt.pool_threads = 8;  // >> cores in CI: parking is guaranteed
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const NetworkParams params = NetworkParams::random(p, 41);
  StreamEngine engine(p, params, opt);
  Rng rng(42);
  const IntTensor img = testutil::random_image(12, 12, 3, rng);
  const IntTensor good = engine.run_one(img);

  const std::vector<IntTensor> batch(16, img);
  for (const int delay_us : {0, 50, 200, 800}) {
    std::thread canceller([&engine, delay_us] {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      engine.cancel();
    });
    // A late cancel may miss the run entirely (it completes first); the
    // next run() clears the stale flag on entry. Both outcomes are legal —
    // the assertion is the rerun below.
    try {
      (void)engine.run(batch);
    } catch (const Error&) {
    }
    canceller.join();
    EXPECT_EQ(engine.run_one(img), good) << "delay " << delay_us << "us";
  }
}

TEST(Engine, KernelAndStreamCountsMatchTopology) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const NetworkParams params = NetworkParams::random(p, 25);
  StreamEngine engine(p, params);
  // One kernel per node plus one fork per fan-out point.
  int forks = 0;
  for (int i = 0; i < p.size(); ++i) {
    if (p.consumers(i).size() > 1) ++forks;
  }
  EXPECT_EQ(engine.kernel_count(), p.size() + forks);
}

}  // namespace
}  // namespace qnn
