#include "core/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qnn {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, FloatAndDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.next_float();
    const double d = rng.next_double();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(6);
  const int n = 20000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, BoolRoughlyBalanced) {
  Rng rng(8);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.next_bool();
  EXPECT_NEAR(heads, 5000, 300);
}

}  // namespace
}  // namespace qnn
