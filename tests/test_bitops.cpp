#include "core/bitops.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"

namespace qnn {
namespace {

TEST(BitOps, WordsForBits) {
  EXPECT_EQ(words_for_bits(0), 0);
  EXPECT_EQ(words_for_bits(1), 1);
  EXPECT_EQ(words_for_bits(64), 1);
  EXPECT_EQ(words_for_bits(65), 2);
  EXPECT_EQ(words_for_bits(128), 2);
  EXPECT_EQ(words_for_bits(129), 3);
}

TEST(BitOps, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xffu);
  EXPECT_EQ(low_mask(63), 0x7fffffffffffffffull);
  EXPECT_EQ(low_mask(64), ~Word{0});
}

TEST(BitOps, Popcount) {
  EXPECT_EQ(popcount(0), 0);
  EXPECT_EQ(popcount(~Word{0}), 64);
  EXPECT_EQ(popcount(0xf0f0u), 8);
}

TEST(BitOps, XnorPopcountCountsAgreements) {
  // a = 1010, b = 1001 over 4 bits: agree at positions 1 and 3? bits:
  // a: 0,1,0,1 (LSB first), b: 1,0,0,1 -> agree at bit2 (0==0) and bit3.
  EXPECT_EQ(xnor_popcount(0b1010, 0b1001, 4), 2);
  EXPECT_EQ(xnor_popcount(0xff, 0xff, 8), 8);
  EXPECT_EQ(xnor_popcount(0xff, 0x00, 8), 0);
}

TEST(BitOps, XnorPopcountIgnoresTail) {
  // Identical high garbage beyond n must not count.
  EXPECT_EQ(xnor_popcount(0xff00, 0xff00, 4), 4);  // low nibble 0==0 agrees
  EXPECT_EQ(xnor_popcount(0xfff0, 0x0000, 4), 4);
}

TEST(BitOps, Pm1DotMatchesSignedArithmetic) {
  // n = 5, a bits = 10110 -> +1 at 1,2,4; b bits = 00111.
  const int a[5] = {-1, +1, +1, -1, +1};
  const int b[5] = {+1, +1, +1, -1, -1};
  int expect = 0;
  for (int i = 0; i < 5; ++i) expect += a[i] * b[i];
  EXPECT_EQ(pm1_dot_word(0b10110, 0b00111, 5), expect);
}

TEST(BitOps, Pm1DotExtremes) {
  EXPECT_EQ(pm1_dot_word(low_mask(64), low_mask(64), 64), 64);
  EXPECT_EQ(pm1_dot_word(low_mask(64), 0, 64), -64);
}

// Bit-by-bit reference for copy_bits.
bool ref_get(const std::vector<Word>& v, std::int64_t i) {
  return (v[static_cast<std::size_t>(i / kWordBits)] >> (i % kWordBits)) & 1U;
}

void ref_set(std::vector<Word>& v, std::int64_t i, bool b) {
  const Word m = Word{1} << (i % kWordBits);
  auto& w = v[static_cast<std::size_t>(i / kWordBits)];
  w = b ? (w | m) : (w & ~m);
}

TEST(BitOps, CopyBitsMatchesBitByBitReference) {
  Rng rng(0x5eedc0b1);
  constexpr std::int64_t kBits = 6 * kWordBits;
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<Word> src(6), dst(6), expect(6);
    for (auto& w : src) w = rng.next_u64();
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i] = rng.next_u64();
      expect[i] = dst[i];
    }
    const auto len = static_cast<std::int64_t>(rng.next_below(161));
    const auto s0 = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(kBits - len + 1)));
    const auto d0 = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(kBits - len + 1)));
    copy_bits(src.data(), s0, dst.data(), d0, len);
    for (std::int64_t i = 0; i < len; ++i) {
      ref_set(expect, d0 + i, ref_get(src, s0 + i));
    }
    ASSERT_EQ(dst, expect) << "iter=" << iter << " s0=" << s0 << " d0=" << d0
                           << " len=" << len;
  }
}

TEST(BitOps, CopyBitsWholeWordsAndStraddles) {
  // Aligned full-word copy, and the maximal-straddle case (both offsets
  // co-prime with the word size).
  std::vector<Word> src = {0x0123456789abcdefULL, 0xfedcba9876543210ULL,
                           0xaaaaaaaaaaaaaaaaULL};
  std::vector<Word> dst(3, 0);
  copy_bits(src.data(), 0, dst.data(), 0, 192);
  EXPECT_EQ(dst, src);

  std::vector<Word> dst2(3, ~Word{0});
  std::vector<Word> expect2(3, ~Word{0});
  copy_bits(src.data(), 13, dst2.data(), 51, 101);
  for (std::int64_t i = 0; i < 101; ++i) {
    ref_set(expect2, 51 + i, ref_get(src, 13 + i));
  }
  EXPECT_EQ(dst2, expect2);
}

}  // namespace
}  // namespace qnn
