#include "core/bitops.h"

#include <gtest/gtest.h>

namespace qnn {
namespace {

TEST(BitOps, WordsForBits) {
  EXPECT_EQ(words_for_bits(0), 0);
  EXPECT_EQ(words_for_bits(1), 1);
  EXPECT_EQ(words_for_bits(64), 1);
  EXPECT_EQ(words_for_bits(65), 2);
  EXPECT_EQ(words_for_bits(128), 2);
  EXPECT_EQ(words_for_bits(129), 3);
}

TEST(BitOps, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xffu);
  EXPECT_EQ(low_mask(63), 0x7fffffffffffffffull);
  EXPECT_EQ(low_mask(64), ~Word{0});
}

TEST(BitOps, Popcount) {
  EXPECT_EQ(popcount(0), 0);
  EXPECT_EQ(popcount(~Word{0}), 64);
  EXPECT_EQ(popcount(0xf0f0u), 8);
}

TEST(BitOps, XnorPopcountCountsAgreements) {
  // a = 1010, b = 1001 over 4 bits: agree at positions 1 and 3? bits:
  // a: 0,1,0,1 (LSB first), b: 1,0,0,1 -> agree at bit2 (0==0) and bit3.
  EXPECT_EQ(xnor_popcount(0b1010, 0b1001, 4), 2);
  EXPECT_EQ(xnor_popcount(0xff, 0xff, 8), 8);
  EXPECT_EQ(xnor_popcount(0xff, 0x00, 8), 0);
}

TEST(BitOps, XnorPopcountIgnoresTail) {
  // Identical high garbage beyond n must not count.
  EXPECT_EQ(xnor_popcount(0xff00, 0xff00, 4), 4);  // low nibble 0==0 agrees
  EXPECT_EQ(xnor_popcount(0xfff0, 0x0000, 4), 4);
}

TEST(BitOps, Pm1DotMatchesSignedArithmetic) {
  // n = 5, a bits = 10110 -> +1 at 1,2,4; b bits = 00111.
  const int a[5] = {-1, +1, +1, -1, +1};
  const int b[5] = {+1, +1, +1, -1, -1};
  int expect = 0;
  for (int i = 0; i < 5; ++i) expect += a[i] * b[i];
  EXPECT_EQ(pm1_dot_word(0b10110, 0b00111, 5), expect);
}

TEST(BitOps, Pm1DotExtremes) {
  EXPECT_EQ(pm1_dot_word(low_mask(64), low_mask(64), 64), 64);
  EXPECT_EQ(pm1_dot_word(low_mask(64), 0, 64), -64);
}

}  // namespace
}  // namespace qnn
