// End-to-end link chaos: the partitioned LinkedEngine runtime under
// seeded MaxRing faults — segment extraction, bit-exact multi-DFE chains,
// mid-run permanent link death with degraded-plan failover, and a
// DfeServer serving straight through a link death with zero lost futures.
#include "dataflow/linked_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <span>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "backend/builtin.h"
#include "fault/fault.h"
#include "models/zoo.h"
#include "nn/reference.h"
#include "serve/server.h"
#include "test_util.h"

namespace qnn {
namespace {

/// vgg_like(16, ...) expands to a purely sequential 20-node chain — every
/// cut is a chain cut, so a 4-DFE partition {4, 9, 14} (one link per
/// maxpool boundary) is always available.
struct ChainNet {
  NetworkSpec spec = models::vgg_like(16, 4, 2);
  Pipeline pipeline = expand(spec);
  NetworkParams params = NetworkParams::random(pipeline, 77);

  [[nodiscard]] std::vector<IntTensor> batch(int n, std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<IntTensor> images;
    images.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      images.push_back(testutil::random_image(16, 16, 3, rng));
    }
    return images;
  }
};

const std::vector<int> kFourDfeCut = {4, 9, 14};

[[nodiscard]] bool is_link_kind(FaultKind kind) {
  return kind == FaultKind::kLinkOutage ||
         kind == FaultKind::kLinkFrameCorrupt ||
         kind == FaultKind::kLinkDeath;
}

// ---- segment extraction ----------------------------------------------------

TEST(LinkChaos, ExtractSegmentRebasesAChainSegment) {
  const ChainNet net;
  const PipelineSegment head =
      extract_segment(net.pipeline, net.params, 0, 4);
  EXPECT_EQ(head.pipeline.size(), 5);
  EXPECT_EQ(head.pipeline.input, net.pipeline.input);
  EXPECT_EQ(head.pipeline.node(0).name, net.pipeline.node(0).name);

  const PipelineSegment mid = extract_segment(net.pipeline, net.params, 5, 9);
  EXPECT_EQ(mid.pipeline.size(), 5);
  // The segment's input is the stream a MaxRing link would carry: the
  // output of the node just before the cut.
  EXPECT_EQ(mid.pipeline.input, net.pipeline.node(4).out);
  EXPECT_EQ(mid.pipeline.input_bits, net.pipeline.node(4).out_bits);
  EXPECT_EQ(mid.pipeline.node(0).main_from, -1);  // rebased to segment input
  EXPECT_EQ(mid.pipeline.node(0).name, net.pipeline.node(5).name);
  // Parameter banks are re-indexed per segment: every node's `param`
  // points into the segment's own (smaller) vectors.
  EXPECT_LT(mid.params.convs.size(), net.params.convs.size());
  for (int i = 0; i < mid.pipeline.size(); ++i) {
    const Node& n = mid.pipeline.node(i);
    if (n.kind == NodeKind::Conv) {
      ASSERT_GE(n.param, 0);
      ASSERT_LT(static_cast<std::size_t>(n.param), mid.params.convs.size());
    }
  }
}

TEST(LinkChaos, ExtractSegmentRefusesNonChainCuts) {
  // tiny has a residual skip 2 -> 6: starting a segment at node 3 would
  // orphan the skip edge, which must be refused loudly.
  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline p = expand(spec);
  const NetworkParams params = NetworkParams::random(p, 5);
  EXPECT_THROW((void)extract_segment(p, params, 3, 6), Error);
}

// ---- healthy multi-DFE chain ----------------------------------------------

TEST(LinkChaos, FourSegmentChainIsBitExact) {
  const ChainNet net;
  LinkedEngineOptions opts;
  opts.cut_after_nodes = kFourDfeCut;
  LinkedEngine engine(net.pipeline, net.params, opts);
  EXPECT_EQ(engine.segments(), 4);
  EXPECT_EQ(engine.links(), 3);

  const ReferenceExecutor ref(net.pipeline, net.params);
  const std::vector<IntTensor> images = net.batch(6, 21);
  StreamEngine::RunStats stats;
  const std::vector<IntTensor> out =
      engine.run(std::span<const IntTensor>(images), &stats);
  ASSERT_EQ(out.size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    EXPECT_EQ(out[i], ref.run(images[i])) << "image " << i;
  }
  EXPECT_GT(stats.link_frames, 0u);
  EXPECT_EQ(stats.link_retransmits, 0u);
  EXPECT_EQ(stats.link_failovers, 0u);
  EXPECT_EQ(stats.links, 3);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(stats.link_health[static_cast<std::size_t>(k)], 1.0);
    EXPECT_TRUE(engine.link_healthy(k));
  }
}

// ---- permanent link death mid-run ------------------------------------------

TEST(LinkChaos, PermanentLinkDeathFailsOverMidRunZeroLost) {
  const ChainNet net;
  LinkedEngineOptions opts;
  opts.cut_after_nodes = kFourDfeCut;
  // Tight watchdog so the seeded death escalates quickly under sanitizers.
  opts.ack_timeout_us = 2'000;
  opts.max_retransmits = 3;
  opts.retransmit_backoff_us = 200;
  opts.engine.faults.add(FaultPlan::link_death(
      /*link=*/1, /*run=*/0, /*after_frames=*/6));
  std::vector<std::string> timeline;
  opts.on_event = [&timeline](const std::string& what) {
    timeline.push_back(what);
  };
  LinkedEngine engine(net.pipeline, net.params, opts);

  const ReferenceExecutor ref(net.pipeline, net.params);
  const std::vector<IntTensor> images = net.batch(8, 33);
  StreamEngine::RunStats stats;
  const std::vector<IntTensor> out =
      engine.run(std::span<const IntTensor>(images), &stats);

  // Zero lost work, bit-exact through the failover: the images the failed
  // attempt did not finish were replayed on the degraded plan.
  ASSERT_EQ(out.size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    EXPECT_EQ(out[i], ref.run(images[i])) << "image " << i;
  }
  EXPECT_GE(stats.link_failovers, 1u);
  EXPECT_GE(engine.plan_failovers(), 1u);
  EXPECT_FALSE(engine.link_healthy(1));
  EXPECT_EQ(stats.links, 3);  // physical chain shape is reported unchanged
  EXPECT_EQ(stats.link_health[1], 0.0);
  ASSERT_FALSE(timeline.empty());
  const std::string joined = [&] {
    std::string all;
    for (const std::string& line : timeline) all += line + "\n";
    return all;
  }();
  EXPECT_NE(joined.find("escalated to dead"), std::string::npos) << joined;
  EXPECT_NE(joined.find("failover"), std::string::npos) << joined;

  // The degraded plan is remembered: the next run pays no new failover
  // and stays bit-exact (the dead link is simply never used again).
  StreamEngine::RunStats stats2;
  const std::vector<IntTensor> out2 =
      engine.run(std::span<const IntTensor>(images), &stats2);
  ASSERT_EQ(out2.size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    EXPECT_EQ(out2[i], ref.run(images[i]));
  }
  EXPECT_EQ(stats2.link_failovers, 0u);
}

// ---- the partitioned chaos soak --------------------------------------------

TEST(LinkChaos, PartitionedChaosSoakStaysBitExactAcrossRuns) {
  const ChainNet net;
  // A genuine chaos draw, filtered to the link kinds: the soak exercises
  // outage windows, seeded frame corruption and permanent deaths on the
  // live MaxRing seam (kernel/stream kinds are soaked by test_fault's
  // server tests, which have a watchdog to rescue hangs).
  FaultPlan::ChaosOptions copts;
  copts.events = 10;
  copts.runs = 4;
  copts.include_link_faults = true;
  copts.links = 3;
  const FaultPlan drawn = FaultPlan::chaos(2027, copts);
  FaultPlan link_only;
  for (const FaultEvent& e : drawn.events) {
    if (is_link_kind(e.kind)) link_only.add(e);
  }
  ASSERT_FALSE(link_only.empty()) << "seed 2027 must draw link kinds";

  LinkedEngineOptions opts;
  opts.cut_after_nodes = kFourDfeCut;
  opts.ack_timeout_us = 3'000;
  opts.max_retransmits = 4;
  opts.retransmit_backoff_us = 200;
  opts.engine.faults = link_only;
  std::vector<std::string> timeline;
  opts.on_event = [&timeline](const std::string& what) {
    timeline.push_back(what);
  };
  LinkedEngine engine(net.pipeline, net.params, opts);

  const ReferenceExecutor ref(net.pipeline, net.params);
  const std::vector<IntTensor> images = net.batch(5, 55);
  std::vector<IntTensor> expected;
  expected.reserve(images.size());
  for (const IntTensor& img : images) expected.push_back(ref.run(img));

  StreamEngine::RunStats total{};
  for (int run = 0; run < 6; ++run) {
    StreamEngine::RunStats stats;
    const std::vector<IntTensor> out =
        engine.run(std::span<const IntTensor>(images), &stats);
    // Every run returns every image (zero lost) and every returned logit
    // vector is bit-exact: link faults are detectable, so they heal
    // (retransmit) or fail over (degraded plan) — never corrupt.
    ASSERT_EQ(out.size(), images.size()) << "run " << run;
    for (std::size_t i = 0; i < images.size(); ++i) {
      EXPECT_EQ(out[i], expected[i]) << "run " << run << " image " << i;
    }
    total.link_frames += stats.link_frames;
    total.link_retransmits += stats.link_retransmits;
    total.link_failovers += stats.link_failovers;
  }
  EXPECT_GT(total.link_frames, 0u);
  // Whether the drawn plan forced retransmits, a failover, or both is
  // seed-dependent; the soak demands the faults actually fired.
  EXPECT_GT(total.link_retransmits + total.link_failovers, 0u)
      << "the drawn link faults must leave a trace";
  if (total.link_failovers > 0) {
    EXPECT_GE(engine.plan_failovers(), 1u);
    EXPECT_FALSE(timeline.empty());
  }
}

// ---- serving through a link death ------------------------------------------

TEST(LinkChaos, ServerServesThroughLinkDeathWithZeroLostRequests) {
  const ChainNet net;
  // Register the partitioned backend once (the registry is process-wide).
  if (backend_registry().find("linked-4dfe") == nullptr) {
    LinkedEngineOptions defaults;
    defaults.cut_after_nodes = kFourDfeCut;
    defaults.ack_timeout_us = 2'000;
    defaults.max_retransmits = 3;
    defaults.retransmit_backoff_us = 200;
    backend_registry().register_backend(
        make_linked_backend(defaults, "linked-4dfe"));
  }

  SessionConfig sc;
  sc.fast_estimate = true;
  sc.engine.faults.add(FaultPlan::link_death(
      /*link=*/1, /*run=*/1, /*after_frames=*/4));
  ServerConfig cfg;
  cfg.pool = {{"linked-4dfe", 1}};
  cfg.max_batch = 4;
  cfg.batch_timeout_us = 500;
  cfg.max_retries = 3;
  cfg.retry_backoff_us = 100;
  DfeServer server(net.spec, net.params, cfg, sc);

  const ReferenceExecutor ref(net.pipeline, net.params);
  const std::vector<IntTensor> images = net.batch(20, 91);
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(images.size());
  for (const IntTensor& img : images) {
    futures.push_back(server.submit_async(img));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const InferenceResult res = futures[i].get();  // zero lost futures
    ASSERT_EQ(res.status, ServerStatus::kOk)
        << "request " << i << ": " << res.error
        << " — failover must mask the link death from clients";
    EXPECT_EQ(res.logits, ref.run(images[i])) << "request " << i;
  }
  server.stop();

  const MetricsSnapshot s = server.metrics().snapshot();
  EXPECT_EQ(s.completed, images.size());
  EXPECT_EQ(s.errors, 0u);
  EXPECT_GE(s.plan_failovers, 1u);
  EXPECT_GT(s.link_frames, 0u);
  EXPECT_EQ(s.links, 3);
  EXPECT_EQ(s.link_health[1], 0.0) << "the dead link's health is surfaced";
  EXPECT_EQ(s.link_health[0], 1.0);
  const std::vector<std::string> events = server.metrics().events();
  const bool failover_logged =
      std::any_of(events.begin(), events.end(), [](const std::string& e) {
        return e.find(kPlanFailover) != std::string::npos;
      });
  EXPECT_TRUE(failover_logged) << "kPlanFailover must reach the timeline";
}

}  // namespace
}  // namespace qnn
