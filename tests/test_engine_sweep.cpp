// Property sweep: randomly generated network topologies must satisfy the
// stack-wide invariants — streaming engine bit-exact vs the reference
// executor (threshold and float modes), simulator interval bounded by the
// analytic bottleneck, and the resource/partition models accepting every
// valid pipeline.
#include <gtest/gtest.h>

#include "dataflow/engine.h"
#include "fpga/resource_model.h"
#include "nn/reference.h"
#include "sim/cycle_model.h"
#include "test_util.h"

namespace qnn {
namespace {

/// Generate a random-but-valid small network spec.
NetworkSpec random_spec(std::uint64_t seed) {
  Rng rng(seed);
  NetworkSpec spec;
  spec.name = "fuzz_" + std::to_string(seed);
  const int size = 8 + 2 * static_cast<int>(rng.next_below(5));  // 8..16
  spec.input = Shape{size, size, 1 + static_cast<int>(rng.next_below(3))};
  spec.input_bits = 4 + static_cast<int>(rng.next_below(5));  // 4..8
  spec.act_bits = 1 + static_cast<int>(rng.next_below(3));    // 1..3

  int spatial = size;
  int channels = spec.input.c;
  bool have_conv = false;
  const int blocks = 2 + static_cast<int>(rng.next_below(4));
  for (int b = 0; b < blocks; ++b) {
    const int kind = static_cast<int>(rng.next_below(4));
    if (kind == 0 || !have_conv) {
      // Convolution with geometry guaranteed to fit.
      const int k = 1 + 2 * static_cast<int>(rng.next_below(2));  // 1 or 3
      const int pad = k == 3 && rng.next_bool() ? 1 : 0;
      if (spatial + 2 * pad < k) continue;
      const int stride = 1 + static_cast<int>(rng.next_below(2));
      const int out_c = 2 + static_cast<int>(rng.next_below(7));
      spec.conv(out_c, k, stride, pad);
      spatial = conv_out_extent(spatial, k, stride, pad);
      channels = out_c;
      have_conv = true;
    } else if (kind == 1 && spatial >= 4) {
      spec.max_pool(2, 2);
      spatial = conv_out_extent(spatial, 2, 2, 0);
    } else if (kind == 2 && spatial >= 3 && have_conv) {
      const bool down = rng.next_bool() && spatial >= 6;
      const int out_c = down ? channels * 2 : channels;
      spec.residual(out_c, down ? 2 : 1);
      if (down) spatial = conv_out_extent(spatial, 3, 2, 1);
      channels = out_c;
    }
    if (spatial < 2) break;
  }
  if (!have_conv) spec.conv(4, 1, 1, 0);
  spec.dense(3 + static_cast<int>(rng.next_below(5)), /*bn_act=*/false);
  return spec;
}

class NetworkFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkFuzz, StreamingEngineMatchesBothReferenceModes) {
  const NetworkSpec spec = random_spec(GetParam());
  const Pipeline p = expand(spec);
  const NetworkParams params = NetworkParams::random(p, GetParam() * 31 + 7);
  const ReferenceExecutor hw(p, params, BnActMode::Threshold);
  const ReferenceExecutor fl(p, params, BnActMode::FloatPath);
  StreamEngine engine(p, params);
  Rng rng(GetParam() ^ 0x5a5a);
  std::vector<IntTensor> batch;
  for (int i = 0; i < 2; ++i) {
    batch.push_back(
        testutil::random_codes(spec.input, spec.input_bits, rng));
  }
  const auto streamed = engine.run(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const IntTensor expect = hw.run(batch[i]);
    ASSERT_EQ(streamed[i], expect) << spec.name << " image " << i;
    ASSERT_EQ(fl.run(batch[i]), expect) << spec.name << " (float path)";
  }
}

TEST_P(NetworkFuzz, SimulatorIntervalBoundedByAnalytic) {
  const NetworkSpec spec = random_spec(GetParam());
  const Pipeline p = expand(spec);
  const SimConfig cfg;
  const SimResult r = simulate(p, cfg, 2);
  EXPECT_GE(r.steady_interval, analytic_bottleneck_cycles(p, cfg))
      << spec.name;
  EXPECT_GT(r.first_image_cycles, 0u);
}

TEST_P(NetworkFuzz, ResourceModelAcceptsAndRollsUp) {
  const NetworkSpec spec = random_spec(GetParam());
  const Pipeline p = expand(spec);
  const NetworkResources r = estimate_resources(p);
  EXPECT_GT(r.luts, 0.0) << spec.name;
  EXPECT_GT(r.ffs, 0.0);
  EXPECT_GE(r.bram_blocks, 0);
  EXPECT_EQ(static_cast<int>(r.nodes.size()), p.size());
}

TEST_P(NetworkFuzz, CorrectnessIndependentOfFifoCapacity) {
  // Engine outputs must not depend on FIFO sizing (only liveness could —
  // the skip FIFOs are sized to a full map precisely so that any regular
  // capacity is deadlock-free). Stress with tiny and odd capacities.
  const NetworkSpec spec = random_spec(GetParam());
  const Pipeline p = expand(spec);
  const NetworkParams params = NetworkParams::random(p, GetParam() + 99);
  Rng rng(GetParam() ^ 0xfeed);
  const IntTensor img =
      testutil::random_codes(spec.input, spec.input_bits, rng);
  const ReferenceExecutor ref(p, params);
  const IntTensor expect = ref.run(img);
  for (std::size_t capacity : {2u, 3u, 17u, 4096u}) {
    EngineOptions opt;
    opt.fifo_capacity = capacity;
    StreamEngine engine(p, params, opt);
    ASSERT_EQ(engine.run_one(img), expect)
        << spec.name << " capacity " << capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace qnn
