#include "models/zoo.h"

#include <gtest/gtest.h>

#include "nn/pipeline.h"

namespace qnn {
namespace {

TEST(Models, ResNet18ShapesMatchTableI) {
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  // conv1 -> 112x112x64 (Table I).
  EXPECT_EQ(p.node(0).kind, NodeKind::Conv);
  EXPECT_EQ(p.node(0).out, (Shape{112, 112, 64}));
  // maxpool -> 56x56.
  const Node& pool = p.node(2);
  EXPECT_EQ(pool.kind, NodeKind::MaxPool);
  EXPECT_EQ(pool.out, (Shape{56, 56, 64}));
  // Stage output sizes: 56, 28, 14, 7 with 64/128/256/512 channels.
  int adds = 0;
  Shape last_add{};
  std::vector<Shape> add_shapes;
  for (const auto& n : p.nodes) {
    if (n.kind == NodeKind::Add) {
      ++adds;
      add_shapes.push_back(n.out);
      last_add = n.out;
    }
  }
  EXPECT_EQ(adds, 8);  // 2 blocks per stage, 4 stages
  EXPECT_EQ(add_shapes[0], (Shape{56, 56, 64}));
  EXPECT_EQ(add_shapes[2], (Shape{28, 28, 128}));
  EXPECT_EQ(add_shapes[4], (Shape{14, 14, 256}));
  EXPECT_EQ(last_add, (Shape{7, 7, 512}));
  // Final classifier.
  EXPECT_EQ(p.output_shape(), (Shape{1, 1, 1000}));
}

TEST(Models, ResNet34DeepensEveryStage) {
  const Pipeline p18 = expand(models::resnet18(224, 1000, 2));
  const Pipeline p34 = expand(models::resnet34(224, 1000, 2));
  int adds18 = 0;
  int adds34 = 0;
  for (const auto& n : p18.nodes) adds18 += n.kind == NodeKind::Add;
  for (const auto& n : p34.nodes) adds34 += n.kind == NodeKind::Add;
  EXPECT_EQ(adds18, 8);
  EXPECT_EQ(adds34, 16);  // 3 + 4 + 6 + 3 basic blocks
  EXPECT_EQ(p34.output_shape(), (Shape{1, 1, 1000}));
  EXPECT_GT(p34.total_weight_bits(), p18.total_weight_bits());
  // Final stage still lands at 7x7x512 for 224x224 inputs.
  Shape last_add{};
  for (const auto& n : p34.nodes) {
    if (n.kind == NodeKind::Add) last_add = n.out;
  }
  EXPECT_EQ(last_add, (Shape{7, 7, 512}));
}

TEST(Models, ResNet18HasThreeProjections) {
  const Pipeline p = expand(models::resnet18(224, 1000, 2));
  int projections = 0;
  for (const auto& n : p.nodes) {
    if (n.kind == NodeKind::Conv && n.k == 1 && n.stride == 2) ++projections;
  }
  EXPECT_EQ(projections, 3);  // conv3_1, conv4_1, conv5_1 downsample
}

TEST(Models, ResNetNoskipHasSameConvLadderButNoAdds) {
  const Pipeline with = expand(models::resnet18(224, 1000, 2));
  const Pipeline without = expand(models::resnet18_noskip(224, 1000, 2));
  int adds = 0;
  for (const auto& n : without.nodes) adds += n.kind == NodeKind::Add;
  EXPECT_EQ(adds, 0);
  // Identical 3x3 convolution work (projections are skip infrastructure).
  auto conv3x3_macs = [](const Pipeline& p) {
    std::int64_t macs = 0;
    for (const auto& n : p.nodes) {
      if (n.kind == NodeKind::Conv && n.k == 3) {
        macs += n.out.elems() * n.k * n.k * n.in.c;
      }
    }
    return macs;
  };
  EXPECT_EQ(conv3x3_macs(with), conv3x3_macs(without));
  EXPECT_EQ(with.output_shape(), without.output_shape());
}

TEST(Models, AlexNetShapes) {
  const Pipeline p = expand(models::alexnet(224, 1000, 2));
  EXPECT_EQ(p.node(0).out, (Shape{55, 55, 96}));
  EXPECT_EQ(p.node(0).stride, 4);
  EXPECT_EQ(p.output_shape(), (Shape{1, 1, 1000}));
  // Three dense layers lowered to convs with full spatial kernels: the
  // first spans the 6x6 map left after the last pool.
  int full_spatial = 0;
  for (const auto& n : p.nodes) {
    if (n.kind == NodeKind::Conv && n.k == 6) ++full_spatial;
  }
  EXPECT_EQ(full_spatial, 1);
}

TEST(Models, AlexNetDenseDominatesWeights) {
  // "Due to lack of big FC layers ... ResNet requires fewer BRAMs than
  // AlexNet" (§IV-B2): AlexNet's FC weights outweigh its conv weights.
  const Pipeline p = expand(models::alexnet(224, 1000, 2));
  std::int64_t conv_bits = 0;
  std::int64_t fc_bits = 0;
  for (const auto& n : p.nodes) {
    if (n.kind != NodeKind::Conv) continue;
    const std::int64_t bits = n.filter_shape().total_weights();
    if (n.out.h == 1 && n.out.w == 1) {
      fc_bits += bits;
    } else {
      conv_bits += bits;
    }
  }
  EXPECT_GT(fc_bits, conv_bits * 10);
  // And ResNet-18 carries fewer weights than AlexNet in total.
  const Pipeline r = expand(models::resnet18(224, 1000, 2));
  EXPECT_LT(r.total_weight_bits(), p.total_weight_bits());
}

class VggInputSweep : public ::testing::TestWithParam<int> {};

TEST_P(VggInputSweep, FinalSpatialExtentIsBounded) {
  const int input = GetParam();
  const Pipeline p = expand(models::vgg_like(input, 10, 2));
  // The first dense layer's window never exceeds 4x4 regardless of input
  // size — the property behind the small resource growth in Fig 6.
  for (const auto& n : p.nodes) {
    if (n.kind == NodeKind::Conv && n.out.h == 1 && n.out.w == 1) {
      EXPECT_LE(n.k, 4) << "input " << input;
      EXPECT_EQ(n.in.c, 256);
      break;
    }
  }
  EXPECT_EQ(p.output_shape(), (Shape{1, 1, 10}));
}

INSTANTIATE_TEST_SUITE_P(Sizes, VggInputSweep,
                         ::testing::Values(32, 64, 96, 144, 224));

TEST(Models, VggWeightBitsNearlyInputSizeIndependent) {
  const auto w32 = expand(models::vgg_like(32, 10, 2)).total_weight_bits();
  const auto w224 = expand(models::vgg_like(224, 10, 2)).total_weight_bits();
  // Identical conv stacks; only the first FC kernel extent may differ.
  EXPECT_LT(std::abs(static_cast<double>(w224 - w32)) /
                static_cast<double>(w32),
            0.30);
}

TEST(Models, TinyCoversEveryNodeKind) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  bool kinds[5] = {};
  for (const auto& n : p.nodes) kinds[static_cast<int>(n.kind)] = true;
  for (bool k : kinds) EXPECT_TRUE(k);
}

TEST(Models, BuildersRejectTooSmallInputs) {
  EXPECT_THROW(models::resnet18(16), Error);
  EXPECT_THROW(models::alexnet(32), Error);
  EXPECT_THROW(models::vgg_like(8), Error);
}

}  // namespace
}  // namespace qnn
