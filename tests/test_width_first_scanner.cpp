#include "dataflow/width_first_scanner.h"

#include <gtest/gtest.h>

#include "dataflow/window_scanner.h"
#include "test_util.h"

namespace qnn {
namespace {

struct Result {
  std::vector<WidthFirstScanner::Completed> positions;
  std::vector<std::vector<std::int32_t>> windows;
};

/// Drive a width-first scanner with a tensor's channel-major padded walk.
Result scan_width_first_padded(WidthFirstScanner& s, const IntTensor& in,
                               int pad) {
  Result r;
  const Shape& shape = in.shape();
  const int hp = shape.h + 2 * pad;
  const int wp = shape.w + 2 * pad;
  for (int c = 0; c < shape.c; ++c) {
    for (int y = 0; y < hp; ++y) {
      for (int x = 0; x < wp; ++x) {
        const bool padding = y < pad || y >= pad + shape.h || x < pad ||
                             x >= pad + shape.w;
        EXPECT_EQ(s.next_is_padding(), padding);
        const std::int32_t v =
            padding ? 0 : in.at(y - pad, x - pad, c);
        const auto completed = s.advance(v);
        if (completed) {
          std::vector<std::int32_t> w(
              static_cast<std::size_t>(s.window_values()));
          s.window(*completed, w);
          r.positions.push_back(*completed);
          r.windows.push_back(std::move(w));
        }
      }
    }
  }
  EXPECT_TRUE(s.done());
  return r;
}

struct Geometry {
  int h, w, c, k, stride, pad;
};

class WidthFirstSweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(WidthFirstSweep, ProducesSameWindowsAsDepthFirst) {
  const Geometry g = GetParam();
  const Shape in_shape{g.h, g.w, g.c};
  Rng rng(2000 + static_cast<std::uint64_t>(g.h * 7 + g.c));
  const IntTensor in = testutil::random_codes(in_shape, 4, rng);

  // Depth-first baseline.
  WindowScanner df(in_shape, g.k, g.stride, g.pad);
  std::vector<std::vector<std::int32_t>> df_windows;
  std::int64_t next = 0;
  while (!df.done()) {
    const std::int32_t v = df.next_is_padding() ? 0 : in[next++];
    const auto completed = df.advance(v);
    if (completed) {
      std::vector<std::int32_t> w(
          static_cast<std::size_t>(df.window_values()));
      df.window(*completed, w);
      df_windows.push_back(std::move(w));
    }
  }

  WidthFirstScanner wf(in_shape, g.k, g.stride, g.pad);
  const Result r = scan_width_first_padded(wf, in, g.pad);
  ASSERT_EQ(r.windows.size(), df_windows.size());
  // Both emit windows in raster order of output positions.
  for (std::size_t i = 0; i < r.windows.size(); ++i) {
    EXPECT_EQ(r.windows[i], df_windows[i]) << "window " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WidthFirstSweep,
    ::testing::Values(Geometry{5, 5, 3, 3, 1, 0},
                      Geometry{6, 6, 2, 3, 1, 1},
                      Geometry{8, 8, 4, 3, 2, 1},
                      Geometry{7, 9, 2, 2, 2, 0},
                      Geometry{6, 6, 1, 3, 1, 1},   // single channel
                      Geometry{10, 10, 3, 5, 2, 2}));

TEST(WidthFirst, BufferFormulaMatchesPaper) {
  // H_p*W_p*(I-1) + W_p*(K-1) + K on the padded map (§III-B1b).
  WidthFirstScanner s(Shape{56, 56, 64}, 3, 1, 1);
  EXPECT_EQ(s.buffer_values(), 58LL * 58 * 63 + 58 * 2 + 3);
  WindowScanner df(Shape{56, 56, 64}, 3, 1, 1);
  // The depth-first buffer is well over an order of magnitude smaller.
  EXPECT_GT(s.buffer_values(), 25 * df.paper_buffer_values());
}

TEST(WidthFirst, ResetAllowsReuse) {
  const Shape in{5, 5, 2};
  Rng rng(3);
  const IntTensor img = testutil::random_codes(in, 4, rng);
  WidthFirstScanner s(in, 3, 1, 0);
  const Result a = scan_width_first_padded(s, img, 0);
  s.reset();
  const Result b = scan_width_first_padded(s, img, 0);
  EXPECT_EQ(a.windows, b.windows);
}

TEST(WidthFirst, RejectsOversizedWindow) {
  EXPECT_THROW(WidthFirstScanner(Shape{4, 4, 2}, 7, 1, 0), Error);
}

}  // namespace
}  // namespace qnn
