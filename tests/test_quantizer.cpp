#include "quant/quantizer.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace qnn {
namespace {

TEST(ActQuantizer, TwoBitStaircase) {
  const ActQuantizer q(2, 1.0);
  EXPECT_EQ(q.levels(), 4);
  EXPECT_EQ(q.max_code(), 3);
  EXPECT_EQ(q.code(-5.0), 0);
  EXPECT_EQ(q.code(0.0), 0);
  EXPECT_EQ(q.code(0.999), 0);
  EXPECT_EQ(q.code(1.0), 1);
  EXPECT_EQ(q.code(1.5), 1);
  EXPECT_EQ(q.code(2.0), 2);
  EXPECT_EQ(q.code(3.0), 3);
  EXPECT_EQ(q.code(100.0), 3);  // saturates at the top level
}

TEST(ActQuantizer, OneBitIsThresholdAtD) {
  const ActQuantizer q(1, 0.5);
  EXPECT_EQ(q.code(0.49), 0);
  EXPECT_EQ(q.code(0.5), 1);
  EXPECT_EQ(q.code(7.0), 1);
}

TEST(ActQuantizer, RangeSizeScalesEndpoints) {
  const ActQuantizer q(2, 0.25);
  EXPECT_EQ(q.code(0.24), 0);
  EXPECT_EQ(q.code(0.25), 1);
  EXPECT_EQ(q.code(0.5), 2);
  EXPECT_EQ(q.code(0.75), 3);
}

TEST(ActQuantizer, MonotoneNondecreasing) {
  const ActQuantizer q(3, 0.37);
  std::int32_t prev = q.code(-10.0);
  for (double y = -10.0; y < 10.0; y += 0.01) {
    const std::int32_t c = q.code(y);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_EQ(prev, q.max_code());
}

TEST(ActQuantizer, MidpointLiesInsideRange) {
  const ActQuantizer q(2, 2.0);
  for (std::int32_t c = 0; c <= q.max_code(); ++c) {
    EXPECT_EQ(q.code(q.midpoint(c)), c);
  }
}

TEST(ActQuantizer, RejectsBadConfig) {
  EXPECT_THROW(ActQuantizer(0, 1.0), Error);
  EXPECT_THROW(ActQuantizer(9, 1.0), Error);
  EXPECT_THROW(ActQuantizer(2, 0.0), Error);
  EXPECT_THROW(ActQuantizer(2, -1.0), Error);
}

}  // namespace
}  // namespace qnn
